//! The sharded, versioned instance catalog.
//!
//! The service holds many named data instances at once. Each instance is
//! stored *indexed*: alongside the [`Structure`] sits a prebuilt
//! [`PredIndex`] so every evaluation strategy reads per-predicate edge and
//! label lists as sorted slices instead of rescanning adjacency, plus the
//! instance's **live materialisations** — one incrementally maintained
//! [`MaterializedFixpoint`] per semi-naive program that has queried it.
//!
//! Instances are **immutable snapshots**: a mutation builds a new
//! [`IndexedInstance`] — data snapshot-cloned and patched, index updated by
//! [`PredIndex::apply`] deltas (not rebuilt), every materialisation carried
//! forward by *incremental* maintenance (not re-evaluated) — under a fresh
//! catalog-wide version, and swaps the `Arc` (copy-on-write). Both the
//! structure and the index store their lists in `Arc`-shared pages
//! (`sirup_core::paged`), so the "clone" is O(pages) pointer bumps and
//! patching dirties only the pages the ops touch: a point write is
//! O(touched) end to end, flat in instance size, and consecutive versions
//! physically share all untouched storage ([`CowStats`] measures how
//! much). In-flight readers keep the snapshot they resolved: data, index,
//! and materialisations are mutually consistent by construction, with no
//! version checks on the read path.
//!
//! Mutations to the *same* instance are serialised in ticket order (see
//! [`Catalog::reserve_ticket`]): the batch executor may run mutation
//! requests on any worker thread, but their effects apply in submission
//! order, which keeps replayed mutation streams deterministic. Mutations to
//! different instances proceed in parallel (the expensive copy-forward work
//! happens outside the shard lock).
//!
//! The map is split into shards, each behind its own `RwLock`, so concurrent
//! lookups from worker threads and loads from the control path contend only
//! per shard. Shard choice hashes the instance name with the workspace's
//! `FxHasher`.

use crate::cache::StampedLru;
use sirup_core::fx::{FxHashMap, FxHasher};
use sirup_core::sync;
use sirup_core::telemetry;
use sirup_core::{FactOp, FrozenStructure, PredIndex, Scheduler, Structure};
use sirup_engine::{MaterializationStats, MaterializedFixpoint, FREEZE_EDGE_THRESHOLD};
use std::hash::Hasher as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};

/// Most live materialisations one instance retains (LRU beyond this):
/// every mutation carries each attached materialisation forward, so an
/// unbounded set — one per distinct semi-naive program ever queried —
/// would make per-op mutation cost and memory grow without bound.
const MAX_LIVE_MATERIALIZATIONS: usize = 32;

/// Structural-sharing statistics of one snapshot, measured against the
/// version it was mutated from (all-zero sharing for a fresh load: there
/// is no predecessor to share with).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Storage pages (structure) + posting chunks (index) in the snapshot.
    pub pages: usize,
    /// Of those, how many are physically shared (same allocation) with the
    /// predecessor snapshot — O(touched) writes keep this near `pages`.
    pub shared_pages: usize,
    /// Approximate heap bytes retained by data + index. Shared pages count
    /// fully: this is "bytes reachable from this snapshot", of which
    /// roughly `shared_ratio()` cost nothing new.
    pub retained_bytes: usize,
}

impl CowStats {
    /// Measure a snapshot with no predecessor (fresh load / recovery).
    fn fresh(data: &Structure, index: &PredIndex) -> CowStats {
        CowStats {
            pages: data.page_count() + index.chunk_count(),
            shared_pages: 0,
            retained_bytes: data.retained_bytes() + index.retained_bytes(),
        }
    }

    /// Measure a mutated snapshot against the version it came from.
    fn against(data: &Structure, index: &PredIndex, old: &IndexedInstance) -> CowStats {
        CowStats {
            shared_pages: data.shared_pages_with(&old.data) + index.shared_chunks_with(&old.index),
            ..CowStats::fresh(data, index)
        }
    }

    /// Fraction of pages shared with the predecessor (0.0 with no pages).
    pub fn shared_ratio(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.shared_pages as f64 / self.pages as f64
        }
    }

    /// Approximate bytes of `retained_bytes` that are shared with the
    /// predecessor (retained scaled by the shared-page fraction).
    pub fn shared_bytes(&self) -> u64 {
        (self.retained_bytes as f64 * self.shared_ratio()) as u64
    }
}

/// A named, immutable snapshot of a data instance: the structure, its
/// prebuilt per-predicate index, and the live materialisations attached to
/// this version.
#[derive(Debug)]
pub struct IndexedInstance {
    /// Catalog name.
    pub name: String,
    /// The data instance.
    pub data: Structure,
    /// Per-predicate index snapshot of `data`.
    pub index: PredIndex,
    /// Catalog-wide version of this snapshot (strictly increases across
    /// loads and mutations of any instance; a reload always changes it).
    /// Used for cache keying — never reported to clients.
    pub version: u64,
    /// Per-instance mutation sequence number: 0 after a fresh load, +1 per
    /// applied mutation batch. This is the durable coordinate — the WAL
    /// records it, recovery restores it, and `Answer::Applied` reports it —
    /// so it is deterministic for a given mutation stream regardless of
    /// what other instances the catalog serves concurrently.
    pub seq: u64,
    /// Live materialisations keyed by program cache key, built lazily by
    /// the first semi-naive query and carried forward incrementally by
    /// mutations. Each is immutable once built (mutation clones it); the
    /// set is LRU-bounded by [`MAX_LIVE_MATERIALIZATIONS`].
    mats: StampedLru<Arc<MaterializedFixpoint>>,
    /// Structural sharing of this snapshot with the version it was mutated
    /// from (zero sharing after a fresh load).
    pub cow: CowStats,
    /// Lazily built CSR read snapshot of `data` (see
    /// [`sirup_core::csr::FrozenStructure`]): contiguous per-predicate
    /// adjacency plus label bitmap rows, shared by every strategy that
    /// evaluates against this version. Built at most once per snapshot on
    /// first use, and only for instances above the engine's freeze gate —
    /// the snapshot is immutable, so the frozen view can never go stale.
    frozen: OnceLock<Option<FrozenStructure>>,
}

impl IndexedInstance {
    /// Index `data` under `name` at version 0 (for direct library use; the
    /// catalog assigns real versions).
    pub fn new(name: impl Into<String>, data: Structure) -> IndexedInstance {
        IndexedInstance::with_version(name, data, 0)
    }

    /// Index `data` under `name` at an explicit version (mutation sequence
    /// starts at 0, as after a fresh load).
    pub fn with_version(name: impl Into<String>, data: Structure, version: u64) -> IndexedInstance {
        IndexedInstance::with_state(name, data, version, 0)
    }

    /// Index `data` under `name` at an explicit version and mutation
    /// sequence (the recovery path re-creates instances mid-sequence).
    pub fn with_state(
        name: impl Into<String>,
        data: Structure,
        version: u64,
        seq: u64,
    ) -> IndexedInstance {
        let index = PredIndex::new(&data);
        let cow = CowStats::fresh(&data, &index);
        IndexedInstance {
            name: name.into(),
            data,
            index,
            version,
            seq,
            mats: StampedLru::new(MAX_LIVE_MATERIALIZATIONS),
            cow,
            frozen: OnceLock::new(),
        }
    }

    /// The CSR read snapshot of this version's data, building it on first
    /// use. Returns `None` for instances below the engine's freeze gate
    /// (where building costs more than it saves). Concurrent first calls
    /// race on the build; `OnceLock` keeps the first and drops the rest,
    /// which is sound because both are frozen from the same immutable data.
    pub fn frozen(&self) -> Option<&FrozenStructure> {
        self.frozen
            .get_or_init(|| {
                (self.data.edge_count() >= FREEZE_EDGE_THRESHOLD)
                    .then(|| FrozenStructure::freeze(&self.data))
            })
            .as_ref()
    }

    /// Heap bytes held by the frozen CSR snapshot, if one has been built
    /// (0 otherwise — querying this never forces a build).
    pub fn frozen_bytes(&self) -> usize {
        self.frozen
            .get()
            .and_then(|f| f.as_ref())
            .map_or(0, |f| f.retained_bytes())
    }

    /// The materialisation for `key`, building it with `build` on first
    /// use. Concurrent first uses may build twice; the first insert wins,
    /// which is sound because both are built from this immutable snapshot.
    pub fn materialization(
        &self,
        key: &str,
        build: impl FnOnce() -> MaterializedFixpoint,
    ) -> Arc<MaterializedFixpoint> {
        if let Some(m) = self.mats.get(key) {
            return m;
        }
        let built = Arc::new(build());
        self.mats.insert(key.to_owned(), Arc::clone(&built));
        built
    }

    /// Detach the materialisation for `key`, returning whether one was
    /// attached. Detaching stops the incremental carry-forward cost on
    /// every subsequent mutation — adaptive demotion calls this when
    /// writes dominate a program's traffic. A concurrent reader holding
    /// the `Arc` keeps its (still-correct) snapshot; a concurrent
    /// attacher may re-attach, which is benign (the next demotion
    /// detaches again).
    pub fn detach_materialization(&self, key: &str) -> bool {
        self.mats.remove(key)
    }

    /// Stats of every attached materialisation, sorted by program key.
    pub fn materialization_stats(&self) -> Vec<(String, MaterializationStats)> {
        let mut out: Vec<(String, MaterializationStats)> = self
            .mats
            .entries()
            .into_iter()
            .map(|(k, m)| (k, m.stats()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of attached materialisations.
    pub fn materialization_count(&self) -> usize {
        self.mats.len()
    }
}

/// The result of one applied mutation batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Ops that changed the instance (set semantics: duplicate inserts and
    /// absent retracts are no-ops).
    pub applied: usize,
    /// The instance's mutation sequence number after this batch — the k-th
    /// mutation since the instance was loaded carries `seq == k`,
    /// independent of any other instance's traffic.
    pub seq: u64,
}

type Shard = RwLock<FxHashMap<String, Arc<IndexedInstance>>>;

/// Per-instance mutation ticket state: tickets are handed out in
/// submission order and applied strictly in that order.
#[derive(Debug, Default)]
struct Tickets {
    issued: FxHashMap<String, u64>,
    applied: FxHashMap<String, u64>,
}

/// A sharded map from instance name to versioned [`IndexedInstance`]
/// snapshots, with ticket-ordered copy-on-write mutation.
#[derive(Debug)]
pub struct Catalog {
    shards: Vec<Shard>,
    versions: AtomicU64,
    tickets: Mutex<Tickets>,
    ticket_cv: Condvar,
    /// When set, a mutation carries the instance's live materialisations
    /// forward as parallel subtasks on the shared scheduler (one per
    /// materialisation — they are independent). `None` forwards them
    /// sequentially, which is the differential oracle.
    mat_sched: Option<Arc<Scheduler>>,
}

impl Catalog {
    /// A catalog with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Catalog {
        Catalog {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            versions: AtomicU64::new(0),
            tickets: Mutex::new(Tickets::default()),
            ticket_cv: Condvar::new(),
            mat_sched: None,
        }
    }

    /// Forward live materialisations in parallel on `sched` during
    /// mutations (the server enables this when its `parallelism` config
    /// exceeds 1). Same-instance mutation *order* is untouched — tickets
    /// still serialise whole mutations; only the independent per-program
    /// carry-forward work inside one mutation fans out.
    pub fn with_mat_parallelism(mut self, sched: Arc<Scheduler>) -> Catalog {
        self.mat_sched = Some(sched);
        self
    }

    fn shard_of(&self, name: &str) -> &Shard {
        let mut h = FxHasher::default();
        h.write(name.as_bytes());
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn next_version(&self) -> u64 {
        self.versions.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Load (or replace) an instance under a fresh version. Returns `true`
    /// if a previous instance with this name was replaced. The mutation
    /// sequence restarts at 0 — a (re)load begins a new durable history —
    /// so quiescent ticket state for the name is reset too; with tickets
    /// still outstanding the counters stay, keeping in-flight waiters'
    /// numbering intact.
    pub fn insert(&self, name: impl Into<String>, data: Structure) -> bool {
        let inst = IndexedInstance::with_version(name, data, self.next_version());
        let name = inst.name.clone();
        let replaced = sync::write(self.shard_of(&name))
            .insert(name.clone(), Arc::new(inst))
            .is_some();
        let mut t = sync::lock(&self.tickets);
        if t.issued.get(&name) == t.applied.get(&name) {
            t.issued.remove(&name);
            t.applied.remove(&name);
        }
        replaced
    }

    /// Re-create an instance mid-history: data at mutation sequence `seq`,
    /// ticket counters aligned so the next mutation applies as `seq + 1`.
    /// This is the recovery path — the caller (WAL replay) owns the claim
    /// that `data` really is the fold of the first `seq` mutation batches.
    pub fn restore(&self, name: impl Into<String>, data: Structure, seq: u64) {
        let inst = IndexedInstance::with_state(name, data, self.next_version(), seq);
        let name = inst.name.clone();
        sync::write(self.shard_of(&name)).insert(name.clone(), Arc::new(inst));
        let mut t = sync::lock(&self.tickets);
        t.issued.insert(name.clone(), seq);
        t.applied.insert(name, seq);
    }

    /// Look up an instance by name.
    pub fn get(&self, name: &str) -> Option<Arc<IndexedInstance>> {
        sync::read(self.shard_of(name)).get(name).cloned()
    }

    /// Reserve the next mutation ticket for `name`. Tickets must each be
    /// redeemed by exactly one later [`Catalog::mutate_ticketed`] call (in
    /// any thread); redemption happens in ticket order.
    pub fn reserve_ticket(&self, name: &str) -> u64 {
        let mut t = sync::lock(&self.tickets);
        let counter = t.issued.entry(name.to_owned()).or_insert(0);
        let ticket = *counter;
        *counter += 1;
        ticket
    }

    /// Block until every reserved ticket (for every instance) has been
    /// redeemed. The snapshot path quiesces before serialising the catalog
    /// so no acknowledged-but-unapplied mutation can be missed.
    pub fn quiesce(&self) {
        let mut t = sync::lock(&self.tickets);
        while t.issued.iter().any(|(n, i)| t.applied.get(n) != Some(i)) {
            t = sync::wait(&self.ticket_cv, t);
        }
    }

    /// Apply a mutation batch under a previously reserved ticket: waits
    /// until every earlier ticket for this instance has been applied, then
    /// swaps in the mutated snapshot. Returns `None` if the instance is
    /// (no longer) present — the ticket is still consumed.
    pub fn mutate_ticketed(
        &self,
        name: &str,
        ops: &[FactOp],
        ticket: u64,
    ) -> Option<MutationOutcome> {
        {
            let _t = telemetry::timed(telemetry::Family::TicketWait, "ticket_wait");
            let mut t = sync::lock(&self.tickets);
            while *t.applied.get(name).unwrap_or(&0) != ticket {
                t = sync::wait(&self.ticket_cv, t);
            }
        }
        let outcome = self.apply_mutation(name, ops);
        let mut t = sync::lock(&self.tickets);
        *t.applied.entry(name.to_owned()).or_insert(0) += 1;
        self.ticket_cv.notify_all();
        drop(t);
        outcome
    }

    /// Reserve a ticket and apply `ops` (the one-call path for direct
    /// library use; the batch executor reserves at submission time).
    pub fn mutate(&self, name: &str, ops: &[FactOp]) -> Option<MutationOutcome> {
        let ticket = self.reserve_ticket(name);
        self.mutate_ticketed(name, ops, ticket)
    }

    /// Copy-on-write application: clone the current snapshot's data, patch
    /// it, delta-update the index, carry every materialisation forward
    /// incrementally, and swap the new snapshot in. Runs outside the shard
    /// lock except for the final swap; same-instance ordering is the ticket
    /// sequencer's job.
    fn apply_mutation(&self, name: &str, ops: &[FactOp]) -> Option<MutationOutcome> {
        telemetry::counter_add(telemetry::Counter::MutationsApplied, 1);
        let _apply_t = telemetry::timed(telemetry::Family::MutationApply, "mutation_apply");
        let old = self.get(name)?;
        let mut data = old.data.clone();
        let applied = data.apply_all(ops);
        let mut index = old.index.clone();
        let index_applied = index.apply_all(ops);
        debug_assert_eq!(applied, index_applied, "index deltas diverged from data");
        let mats = StampedLru::new(MAX_LIVE_MATERIALIZATIONS);
        let entries = old.mats.entries();
        let mat_t = (!entries.is_empty())
            .then(|| telemetry::timed(telemetry::Family::MatCarry, "materialisation_carry"));
        match &self.mat_sched {
            Some(sched) if entries.len() >= 2 => {
                // Independent per-program maintenance: one subtask per
                // materialisation; chunk order preserves the LRU insertion
                // order of the sequential path.
                let forwarded = sched.map_chunks(&entries, entries.len(), |slice| {
                    slice
                        .iter()
                        .map(|(k, m)| {
                            let mut fwd = (**m).clone();
                            fwd.apply(ops);
                            (k.clone(), fwd)
                        })
                        .collect::<Vec<_>>()
                });
                for (k, fwd) in forwarded.into_iter().flatten() {
                    mats.insert(k, Arc::new(fwd));
                }
            }
            _ => {
                for (k, m) in entries {
                    let mut fwd = (*m).clone();
                    fwd.apply(ops);
                    mats.insert(k, Arc::new(fwd));
                }
            }
        }
        drop(mat_t);
        let cow = CowStats::against(&data, &index, &old);
        telemetry::gauge_set(telemetry::Gauge::CatalogBytesShared, cow.shared_bytes());
        let version = self.next_version();
        let seq = old.seq + 1;
        let inst = IndexedInstance {
            name: name.to_owned(),
            data,
            index,
            version,
            seq,
            mats,
            cow,
            frozen: OnceLock::new(),
        };
        sync::write(self.shard_of(name)).insert(name.to_owned(), Arc::new(inst));
        Some(MutationOutcome { applied, seq })
    }

    /// Drop an instance. Returns `true` if it existed. Quiescent ticket
    /// state for the name is pruned (a churn of generated names must not
    /// leak counter entries); with tickets still outstanding the entry
    /// stays, so in-flight `mutate_ticketed` waiters keep their numbering.
    pub fn remove(&self, name: &str) -> bool {
        let existed = sync::write(self.shard_of(name)).remove(name).is_some();
        let mut t = sync::lock(&self.tickets);
        if t.issued.get(name) == t.applied.get(name) {
            t.issued.remove(name);
            t.applied.remove(name);
        }
        existed
    }

    /// Number of loaded instances.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| sync::read(s).len()).sum()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All instance names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| sync::read(s).keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::parse::st;
    use sirup_core::{Node, Pred};

    #[test]
    fn insert_get_remove() {
        let c = Catalog::new(4);
        assert!(c.is_empty());
        assert!(!c.insert("a", st("F(x), R(x,y), T(y)")));
        assert!(!c.insert("b", st("T(u)")));
        assert_eq!(c.len(), 2);
        assert_eq!(c.shard_count(), 4);
        let a = c.get("a").unwrap();
        assert_eq!(a.name, "a");
        assert_eq!(a.data.size(), 3);
        assert_eq!(a.index.node_count(), a.data.node_count());
        assert!(c.get("zzz").is_none());
        // Replacing returns true, swaps the Arc, and bumps the version.
        assert!(c.insert("a", st("T(v)")));
        let a2 = c.get("a").unwrap();
        assert_eq!(a2.data.size(), 1);
        assert!(a2.version > a.version);
        // The old Arc stays valid for holders.
        assert_eq!(a.data.size(), 3);
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.names(), vec!["b"]);
    }

    #[test]
    fn mutate_swaps_a_consistent_snapshot() {
        let c = Catalog::new(2);
        c.insert("d", st("F(a), R(a,b), T(b)"));
        let before = c.get("d").unwrap();
        let out = c
            .mutate(
                "d",
                &[
                    FactOp::AddLabel(Pred::A, Node(1)),
                    FactOp::AddLabel(Pred::A, Node(1)), // duplicate: no-op
                    FactOp::RemoveEdge(Pred::R, Node(0), Node(1)),
                ],
            )
            .unwrap();
        assert_eq!(out.applied, 2);
        let after = c.get("d").unwrap();
        assert_eq!(after.seq, out.seq);
        assert_eq!(out.seq, 1, "first mutation since load");
        assert!(after.version > before.version);
        assert!(after.data.has_label(Node(1), Pred::A));
        assert_eq!(after.data.edge_count(), 0);
        // Index was delta-updated, not stale.
        assert!(after.index.pairs(Pred::R).is_empty());
        assert_eq!(
            after.index.nodes_with_label(Pred::A).to_vec(),
            vec![Node(1)]
        );
        // The pre-mutation snapshot is untouched.
        assert!(before.data.has_edge(Pred::R, Node(0), Node(1)));
        // Mutating a missing instance consumes the ticket and reports so.
        assert!(c
            .mutate("missing", &[FactOp::AddLabel(Pred::T, Node(0))])
            .is_none());
    }

    #[test]
    fn point_mutation_shares_almost_all_pages() {
        let c = Catalog::new(1);
        // A large chain instance: many pages per column.
        let mut s = Structure::with_nodes(10_000);
        for i in 0..9_999u32 {
            s.add_edge(Pred::R, Node(i), Node(i + 1));
            if i % 3 == 0 {
                s.add_label(Node(i), Pred::A);
            }
        }
        c.insert("big", s);
        let before = c.get("big").unwrap();
        assert_eq!(before.cow.shared_pages, 0, "fresh load shares nothing");
        assert!(before.cow.retained_bytes > 0);
        c.mutate("big", &[FactOp::AddLabel(Pred::T, Node(5_000))])
            .unwrap();
        let after = c.get("big").unwrap();
        // One touched label page (plus the T posting list) out of hundreds:
        // the acceptance bar is >90% shared after a point write.
        assert!(after.cow.pages > 100);
        assert!(
            after.cow.shared_ratio() > 0.9,
            "shared {}/{}",
            after.cow.shared_pages,
            after.cow.pages
        );
        assert!(after.cow.shared_bytes() > 0);
    }

    #[test]
    fn mutation_carries_materializations_forward() {
        use sirup_core::program::sigma_q;
        use sirup_core::OneCq;
        let q = OneCq::parse("F(x), R(x,y), T(y)");
        let sigma = sigma_q(&q);
        let c = Catalog::new(1);
        c.insert("d", st("T(t), A(a), R(a,t)"));
        let inst = c.get("d").unwrap();
        let mat = inst.materialization("sigma", || MaterializedFixpoint::new(&sigma, &inst.data));
        assert_eq!(mat.answers(Pred::P).len(), 2); // P(t), P(a)
        assert_eq!(inst.materialization_count(), 1);
        // The mutation forwards the materialisation incrementally.
        c.mutate("d", &[FactOp::RemoveLabel(Pred::T, Node(0))])
            .unwrap();
        let fresh = c.get("d").unwrap();
        assert_eq!(fresh.materialization_count(), 1);
        let fwd = fresh.materialization("sigma", || panic!("must be carried forward"));
        assert!(fwd.answers(Pred::P).is_empty());
        // Old snapshot still answers from its own version.
        assert_eq!(mat.answers(Pred::P).len(), 2);
    }

    #[test]
    fn tickets_serialise_same_instance_mutations() {
        let c = Arc::new(Catalog::new(2));
        c.insert("d", st("T(a)"));
        // Reserve in order, redeem from racing threads in reverse order:
        // ticket order must still win.
        let t0 = c.reserve_ticket("d");
        let t1 = c.reserve_ticket("d");
        assert_eq!((t0, t1), (0, 1));
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || {
            // Applies second despite starting first.
            c2.mutate_ticketed("d", &[FactOp::RemoveLabel(Pred::T, Node(0))], t1)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.mutate_ticketed("d", &[FactOp::AddLabel(Pred::T, Node(0))], t0)
            .unwrap();
        h.join().unwrap().unwrap();
        // t0 (re-insert, no-op) then t1 (remove): the label is gone.
        assert!(!c.get("d").unwrap().data.has_label(Node(0), Pred::T));
        // Removing the instance prunes its quiescent ticket state, and a
        // re-created instance starts a fresh ticket sequence.
        assert!(c.remove("d"));
        c.insert("d", st("T(a)"));
        assert_eq!(c.reserve_ticket("d"), 0);
        assert!(c
            .mutate_ticketed("d", &[FactOp::RemoveLabel(Pred::T, Node(0))], 0)
            .is_some());
    }

    #[test]
    fn seq_is_per_instance_and_survives_restore() {
        let c = Catalog::new(2);
        c.insert("a", st("T(u)"));
        c.insert("b", st("T(u)"));
        // Interleave traffic: each instance counts its own mutations.
        assert_eq!(
            c.mutate("a", &[FactOp::AddLabel(Pred::A, Node(0))])
                .unwrap()
                .seq,
            1
        );
        assert_eq!(
            c.mutate("b", &[FactOp::AddLabel(Pred::A, Node(0))])
                .unwrap()
                .seq,
            1
        );
        assert_eq!(
            c.mutate("a", &[FactOp::RemoveLabel(Pred::A, Node(0))])
                .unwrap()
                .seq,
            2
        );
        // A reload restarts the sequence even after earlier mutations.
        c.insert("a", st("T(u)"));
        assert_eq!(c.get("a").unwrap().seq, 0);
        assert_eq!(
            c.mutate("a", &[FactOp::AddLabel(Pred::A, Node(0))])
                .unwrap()
                .seq,
            1
        );
        // Restore re-enters mid-history: next mutation continues the count.
        c.restore("a", st("T(u), A(u)"), 7);
        assert_eq!(c.get("a").unwrap().seq, 7);
        let out = c
            .mutate("a", &[FactOp::RemoveLabel(Pred::A, Node(0))])
            .unwrap();
        assert_eq!(out.seq, 8);
        c.quiesce(); // no tickets outstanding: returns immediately
    }

    #[test]
    fn frozen_snapshot_is_gated_and_cached() {
        let c = Catalog::new(1);
        // Below the freeze gate: no CSR view, and asking costs nothing.
        c.insert("small", st("F(a), R(a,b), T(b)"));
        let small = c.get("small").unwrap();
        assert!(small.frozen().is_none());
        assert_eq!(small.frozen_bytes(), 0);
        // Above the gate: built lazily, once, and consistent with the data.
        let mut s = Structure::with_nodes(200);
        for i in 0..199u32 {
            s.add_edge(Pred::R, Node(i), Node(i + 1));
        }
        s.add_label(Node(0), Pred::F);
        c.insert("big", s);
        let big = c.get("big").unwrap();
        assert_eq!(big.frozen_bytes(), 0, "no build before first use");
        let f = big.frozen().expect("above the freeze gate");
        assert_eq!(f.edge_count(), 199);
        assert!(f.has_label(Node(0), Pred::F));
        assert_eq!(f.out(Pred::R, Node(7)), &[Node(8)]);
        assert!(std::ptr::eq(f, big.frozen().unwrap()), "built once");
        assert!(big.frozen_bytes() > 0);
        // A mutation's fresh snapshot re-freezes lazily — never stale.
        c.mutate("big", &[FactOp::AddEdge(Pred::S, Node(3), Node(9))])
            .unwrap();
        let next = c.get("big").unwrap();
        let f2 = next.frozen().unwrap();
        assert_eq!(f2.out(Pred::S, Node(3)), &[Node(9)]);
        assert!(f.out(Pred::S, Node(3)).is_empty(), "old view untouched");
    }

    #[test]
    fn names_cross_shards() {
        let c = Catalog::new(3);
        for i in 0..20 {
            c.insert(format!("inst{i:02}"), st("T(u)"));
        }
        let names = c.names();
        assert_eq!(names.len(), 20);
        assert!(names.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(c.len(), 20);
    }

    #[test]
    fn single_shard_floor() {
        let c = Catalog::new(0);
        assert_eq!(c.shard_count(), 1);
        c.insert("x", st("T(u)"));
        assert!(c.get("x").is_some());
    }
}
