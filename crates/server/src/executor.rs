//! The batch executor on the shared work-stealing scheduler.
//!
//! A [`Pool`] is the request-level face of the workspace's shared
//! [`Scheduler`] (`sirup-core::sched`): each submitted [`Job`] becomes a
//! detached task on the scheduler's FIFO injector, and the *same* worker
//! threads also run the intra-request subtasks those jobs fan out (parallel
//! plan enumeration, semi-naive delta chunks, UCQ disjuncts) — one set of
//! workers for both levels, so a single expensive request can saturate the
//! machine while small ones keep their zero-overhead sequential path
//! (gated by [`ServerConfig::parallelism`](crate::server::ServerConfig)
//! and the spawn threshold).
//!
//! A job is either a **query** (an `Arc<Plan>` paired with an
//! `Arc<IndexedInstance>` snapshot; workers compute `plan.answer_ctx`) or a
//! **mutation** (a ticketed fact batch applied through the catalog's
//! copy-on-write swap). Both report on the job's reply channel with
//! queue+service latency.
//!
//! Ordering invariant (unchanged from the fixed-pool era, now carried by
//! the scheduler's injector): mutation tickets are reserved atomically with
//! the injector append (see [`Server::enqueue`](crate::server::Server)),
//! workers start injector jobs strictly in FIFO order, and helping threads
//! never pop the injector — so the job holding the next-to-apply ticket is
//! always dequeued before any job that waits on it, and a blocked waiter
//! can never starve the pool.
//!
//! The pool shuts down when dropped: the scheduler **drains the remaining
//! queue** before joining its workers, so every reserved ticket is redeemed
//! and every in-flight request still gets its response — the
//! shutdown-ordering test pins this.

use crate::adaptive::AdaptiveController;
use crate::catalog::{Catalog, IndexedInstance};
use crate::plan::{Answer, Plan, PlanCache};
use sirup_core::telemetry;
use sirup_core::{FactOp, ParCtx, SchedStats, Scheduler};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a worker needs to consult the adaptive controller at execution
/// time: the controller itself and the plan cache re-plans swap into.
pub(crate) struct AdaptiveRuntime {
    /// The feedback controller.
    pub ctrl: Arc<AdaptiveController>,
    /// The server's plan cache (re-plan swap target).
    pub plans: Arc<PlanCache>,
}

/// What a job does when a worker picks it up.
pub(crate) enum Work {
    /// Answer `plan` over the resolved `instance` snapshot.
    Answer {
        /// The (cached) plan.
        plan: Arc<Plan>,
        /// The catalog snapshot resolved at submission time.
        instance: Arc<IndexedInstance>,
    },
    /// Apply a mutation batch under a submission-time ticket.
    Mutate {
        /// The catalog to mutate (mutations resolve at *execution* time).
        catalog: Arc<Catalog>,
        /// Target instance name.
        instance: String,
        /// The fact batch.
        ops: Arc<Vec<FactOp>>,
        /// Ticket reserved at submission (fixes the same-instance order).
        ticket: u64,
    },
}

/// One unit of work plus its reporting envelope.
pub(crate) struct Job {
    /// Position of this request in its batch (for in-order reassembly).
    pub idx: usize,
    /// The work item.
    pub work: Work,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where to send the completion.
    pub reply: Sender<Completion>,
}

/// A finished job.
pub(crate) struct Completion {
    /// The job's batch position.
    pub idx: usize,
    /// The computed answer.
    pub answer: Answer,
    /// Strategy that served it (stable name from [`Plan`], or `mutation`).
    pub strategy: &'static str,
    /// Queue wait + evaluation time.
    pub latency: Duration,
}

/// The request-level executor over the shared scheduler.
pub(crate) struct Pool {
    sched: Arc<Scheduler>,
    /// Intra-request fan-out width; `<= 1` keeps every request on the
    /// sequential path (no `ParCtx` is ever constructed).
    parallelism: usize,
    /// Minimum work-set size before a request-level task splits.
    threshold: usize,
    /// Adaptive routing hooks; `None` = the static policy, untouched.
    adaptive: Option<Arc<AdaptiveRuntime>>,
}

impl Pool {
    /// Spawn a shared scheduler with `threads` workers (at least 1).
    /// `parallelism > 1` lets each request split its own evaluation into
    /// subtasks on the same workers; work sets below `threshold` stay
    /// sequential. `adaptive` attaches the feedback controller workers
    /// consult at execution time (routing decisions cannot happen at
    /// resolve time: a closed batch resolves all its snapshots before any
    /// observation exists).
    pub fn new(
        threads: usize,
        parallelism: usize,
        threshold: usize,
        adaptive: Option<Arc<AdaptiveRuntime>>,
    ) -> Pool {
        Pool {
            sched: Arc::new(Scheduler::new(threads)),
            parallelism,
            threshold,
            adaptive,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.sched.workers()
    }

    /// The shared scheduler (the catalog borrows it for parallel
    /// materialisation carry-forward).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Scheduler lifetime counters.
    pub fn stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Enqueue a job on the scheduler's FIFO injector.
    pub fn submit(&self, job: Job) {
        let sched = Arc::clone(&self.sched);
        let par_enabled = self.parallelism > 1;
        let threshold = self.threshold;
        let adaptive = self.adaptive.clone();
        self.sched.spawn(move || {
            let par = par_enabled.then(|| ParCtx::new(&sched, threshold));
            let (program, target) = match &job.work {
                Work::Answer { plan, instance } => (plan.key(), instance.name.as_str()),
                Work::Mutate { instance, .. } => ("mutation", instance.as_str()),
            };
            // Root trace span for this request (inert unless tracing is on,
            // so the format! is gated too).
            let _req = if telemetry::tracing_enabled() {
                telemetry::request_span(format!("{program} @ {target}"))
            } else {
                telemetry::request_span(String::new())
            };
            let (answer, strategy) = match &job.work {
                Work::Answer { plan, instance } => match &adaptive {
                    // Execution-time routing: consult the controller here,
                    // with every observation up to this job visible —
                    // including the admission bucket, which charges of
                    // already-completed jobs have drained by now (a
                    // resolve-time check alone would see a full bucket for
                    // a whole closed batch).
                    Some(rt) if rt.ctrl.enabled() => {
                        if rt.ctrl.admit(&instance.name) {
                            (
                                rt.ctrl.execute(plan, instance, &rt.plans, par),
                                plan.strategy.name(),
                            )
                        } else {
                            (Answer::Overloaded, "shed")
                        }
                    }
                    _ => (plan.answer_ctx(instance, par), plan.strategy.name()),
                },
                Work::Mutate {
                    catalog,
                    instance,
                    ops,
                    ticket,
                } => {
                    let answer = match catalog.mutate_ticketed(instance, ops, *ticket) {
                        Some(out) => Answer::Applied {
                            applied: out.applied,
                            seq: out.seq,
                        },
                        // Instance vanished between validation and execution
                        // (concurrent remove); the ticket is consumed either
                        // way.
                        None => Answer::Applied { applied: 0, seq: 0 },
                    };
                    // Demotion: a write run crossing the threshold detaches
                    // the demoted programs' materialisations from the live
                    // (post-mutation) instance, so later mutations stop
                    // paying carry-forward for them.
                    if let Some(rt) = &adaptive {
                        let demoted = rt.ctrl.record_write(instance);
                        if !demoted.is_empty() {
                            if let Some(fresh) = catalog.get(instance) {
                                for key in &demoted {
                                    fresh.detach_materialization(key);
                                }
                            }
                        }
                    }
                    (answer, "mutation")
                }
            };
            let latency = job.enqueued.elapsed();
            // The per-(program, instance) observation feed: strategy,
            // latency, result cardinality (what adaptive routing reads).
            telemetry::record_request(program, target, strategy, latency, answer.cardinality());
            // Admission: charge the instance's token bucket the *observed*
            // cost of this completed request.
            if let Some(rt) = &adaptive {
                rt.ctrl.charge(target, latency.as_micros() as u64);
            }
            // The batch collector may have given up (panic elsewhere); a
            // closed reply channel is not this worker's problem.
            let _ = job.reply.send(Completion {
                idx: job.idx,
                answer,
                strategy,
                latency,
            });
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Drain-then-join: every queued job (and so every reserved mutation
        // ticket) completes before the workers exit.
        self.sched.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, PlanOptions, Query};
    use sirup_core::parse::st;
    use sirup_core::{Node, Pred};
    use std::sync::mpsc::channel;

    #[test]
    fn pool_answers_and_shuts_down() {
        let pool = Pool::new(3, 4, 2, None);
        assert_eq!(pool.threads(), 3);
        let plan = Arc::new(Plan::build(
            Query::Delta {
                cq: st("F(x), R(x,y), T(y)"),
                disjoint: false,
            },
            &PlanOptions::default(),
        ));
        let inst = Arc::new(IndexedInstance::new("i", st("F(u), R(u,v), T(v)")));
        let (reply, done) = channel();
        for idx in 0..16 {
            pool.submit(Job {
                idx,
                work: Work::Answer {
                    plan: Arc::clone(&plan),
                    instance: Arc::clone(&inst),
                },
                enqueued: Instant::now(),
                reply: reply.clone(),
            });
        }
        drop(reply);
        let mut seen: Vec<usize> = done
            .iter()
            .map(|c| {
                assert_eq!(c.answer, Answer::Bool(true));
                assert_eq!(c.strategy, "dpll");
                c.idx
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        assert!(pool.stats().jobs_spawned >= 16);
        drop(pool); // joins workers without hanging
    }

    /// Shutdown/drop ordering under in-flight mutations: dropping the pool
    /// while ticketed mutation jobs are still queued must (a) not deadlock
    /// — queued tickets are drained in order, so no waiter starves — and
    /// (b) lose no responses: every submitted job completes.
    #[test]
    fn drop_with_in_flight_mutations_drains_cleanly() {
        let catalog = Arc::new(Catalog::new(2));
        catalog.insert("d", st("T(a), A(b), R(b,a)"));
        let pool = Pool::new(2, 1, 64, None);
        let (reply, done) = channel();
        let total = 24usize;
        for idx in 0..total {
            // Alternate inserts and retracts of the same label so every op
            // is effective, all against one instance (maximal ticket
            // contention).
            let op = if idx % 2 == 0 {
                FactOp::RemoveLabel(Pred::T, Node(0))
            } else {
                FactOp::AddLabel(Pred::T, Node(0))
            };
            let ticket = catalog.reserve_ticket("d");
            pool.submit(Job {
                idx,
                work: Work::Mutate {
                    catalog: Arc::clone(&catalog),
                    instance: "d".to_owned(),
                    ops: Arc::new(vec![op]),
                    ticket,
                },
                enqueued: Instant::now(),
                reply: reply.clone(),
            });
        }
        drop(reply);
        // Drop the pool immediately: most jobs are still queued. Drop joins
        // the workers, which drain the queue first.
        drop(pool);
        let completions: Vec<Completion> = done.iter().collect();
        assert_eq!(completions.len(), total, "lost responses on shutdown");
        let mut seen: Vec<usize> = completions.iter().map(|c| c.idx).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
        for c in &completions {
            assert_eq!(c.strategy, "mutation");
            let Answer::Applied { applied, seq } = c.answer else {
                panic!("mutation job answered {:?}", c.answer);
            };
            assert_eq!(applied, 1, "every alternating op must be effective");
            assert!(seq > 0);
        }
        // Ticket order ⇒ deterministic final state: even total ends on an
        // Add, so the label is present.
        assert!(catalog.get("d").unwrap().data.has_label(Node(0), Pred::T));
        // And the whole ticket range was redeemed: a fresh mutation does
        // not block.
        assert!(catalog
            .mutate("d", &[FactOp::AddLabel(Pred::A, Node(0))])
            .is_some());
    }
}
