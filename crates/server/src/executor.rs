//! The fixed worker pool.
//!
//! A [`Pool`] owns `threads` OS threads (`std::thread`) that drain a shared
//! submission queue (an `mpsc` channel behind a mutex — the classic
//! work-queue shape the offline dependency set affords). A job pairs an
//! `Arc<Plan>` with an `Arc<IndexedInstance>`; workers compute
//! `plan.answer(instance)` and report on the job's reply channel with
//! queue+service latency. The pool shuts down when dropped: the sender side
//! of the queue closes, workers see the disconnect and exit, and `drop`
//! joins them.

use crate::catalog::IndexedInstance;
use crate::plan::{Answer, Plan};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One unit of work: answer `plan` over `instance`, reply on `reply`.
pub(crate) struct Job {
    /// Position of this request in its batch (for in-order reassembly).
    pub idx: usize,
    /// The (cached) plan.
    pub plan: Arc<Plan>,
    /// The catalog instance.
    pub instance: Arc<IndexedInstance>,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where to send the completion.
    pub reply: Sender<Completion>,
}

/// A finished job.
pub(crate) struct Completion {
    /// The job's batch position.
    pub idx: usize,
    /// The computed answer.
    pub answer: Answer,
    /// Strategy that served it (stable name from [`Plan`]).
    pub strategy: &'static str,
    /// Queue wait + evaluation time.
    pub latency: Duration,
}

/// A fixed pool of worker threads draining one submission queue.
pub(crate) struct Pool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn `threads` workers (at least 1).
    pub fn new(threads: usize) -> Pool {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("sirup-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job.
    pub fn submit(&self, job: Job) {
        self.tx
            .as_ref()
            .expect("pool is live until dropped")
            .send(job)
            .expect("workers outlive the pool handle");
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only for the dequeue, not the evaluation.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // queue closed: shut down
        };
        let answer = job.plan.answer(&job.instance);
        // The batch collector may have given up (panic elsewhere); a closed
        // reply channel is not this worker's problem.
        let _ = job.reply.send(Completion {
            idx: job.idx,
            answer,
            strategy: job.plan.strategy.name(),
            latency: job.enqueued.elapsed(),
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, PlanOptions, Query};
    use sirup_core::parse::st;

    #[test]
    fn pool_answers_and_shuts_down() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let plan = Arc::new(Plan::build(
            Query::Delta {
                cq: st("F(x), R(x,y), T(y)"),
                disjoint: false,
            },
            &PlanOptions::default(),
        ));
        let inst = Arc::new(IndexedInstance::new("i", st("F(u), R(u,v), T(v)")));
        let (reply, done) = channel();
        for idx in 0..16 {
            pool.submit(Job {
                idx,
                plan: Arc::clone(&plan),
                instance: Arc::clone(&inst),
                enqueued: Instant::now(),
                reply: reply.clone(),
            });
        }
        drop(reply);
        let mut seen: Vec<usize> = done
            .iter()
            .map(|c| {
                assert_eq!(c.answer, Answer::Bool(true));
                assert_eq!(c.strategy, "dpll");
                c.idx
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
        drop(pool); // joins workers without hanging
    }
}
