//! # sirup-server
//!
//! A concurrent certain-answer query service over the workspace's engines —
//! the paper's one-shot library calls packaged as a multi-instance,
//! multi-threaded service. The in-process [`Server`] is the core of the
//! service; [`wire`] adds a length-prefixed TCP front-end on top of it and
//! [`wal`] gives it write-ahead durability (`sirupctl serve`/`connect`/
//! `replay` front both).
//!
//! Three layers (see `DESIGN.md`, "Service layer" and "Incremental
//! maintenance"):
//!
//! * [`catalog`] — a **sharded, versioned instance catalog**: named
//!   [`sirup_core::Structure`] snapshots behind per-shard `RwLock`s, each
//!   stored with a prebuilt [`sirup_core::PredIndex`] and the instance's
//!   live [`sirup_engine::MaterializedFixpoint`]s. Mutations are
//!   copy-on-write `Arc` swaps under fresh versions: data patched, index
//!   delta-updated, materialisations carried forward *incrementally*
//!   (delta rules + DRed), same-instance order fixed by tickets;
//! * [`plan`] — a **plan cache**: an LRU of per-program [`plan::Plan`]s
//!   memoising the §4 classifier verdicts, the CQ's core, and — given
//!   Prop. 2 boundedness evidence — the UCQ/FO rewriting, so bounded
//!   programs are answered by rewriting instead of fixpoint (and need no
//!   maintenance at all under mutation);
//! * `executor` + [`server`] — a **batch executor on the shared
//!   work-stealing scheduler** (`sirup-core::sched`): request-level jobs
//!   (queries *and* ticketed mutations) enter the scheduler's FIFO
//!   injector, and — with [`server::ServerConfig::parallelism`] `> 1` —
//!   each request splits its own evaluation (plan enumeration chunks,
//!   semi-naive delta chunks, UCQ disjuncts, materialisation
//!   carry-forward) into subtasks on the *same* workers. Batches are
//!   grouped by program so one plan serves the whole group, each query
//!   routes to the cheapest strategy (answer cache → rewriting →
//!   materialised semi-naive → DPLL for disjunctive sirups), and the
//!   answer cache is keyed by instance version so mutations invalidate it
//!   by construction.
//!
//! Two service-boundary layers sit on top (see `DESIGN.md`, "Wire protocol
//! & durability"):
//!
//! * [`wal`] — a **write-ahead log**: every acknowledged load/mutation/
//!   remove is an fsync'd [`sirup_core::FactOp`] record in `wal.log`
//!   *before* the catalog applies it, with periodic snapshot + log
//!   compaction (`snapshot.bin`, epoch-stamped) so a `kill -9` recovers
//!   the exact catalog — per-instance sequence numbers included;
//! * [`wire`] — a **TCP front-end** on `std::net`: length-prefixed,
//!   CRC-checked frames ([`sirup_core::frame`]) carrying a small text
//!   vocabulary (`load`/`query`/`mutate`/`stats`/`tail`/...), each
//!   connection a detached job on the *same* shared scheduler (a blocked
//!   socket never holds a worker — connections re-spawn on a read
//!   timeout), each request isolated by `catch_unwind`.
//!
//! The differential test-suite pins batched, concurrent answers — cold
//! cache, warm cache, rewriting-served, under mutation, and with
//! intra-request parallelism on — to the engine's **sequential** evaluation
//! paths, which remain available unchanged and serve as the oracle for
//! every parallel path.
//!
//! ```
//! use sirup_server::{Server, Request, Query, Answer};
//! use sirup_core::{parse::st, FactOp, Node, OneCq, Pred};
//!
//! let server = Server::with_defaults();
//! server.load_instance("d", st("F(u), R(u,v), T(v)"));
//! let req = Request::query(Query::PiGoal(OneCq::parse("F(x), R(x,y), T(y)")), "d");
//! let resp = server.submit(std::slice::from_ref(&req)).unwrap();
//! assert_eq!(resp[0].answer, Answer::Bool(true));
//!
//! // The catalog is live: retract the T-fact and the answer flips.
//! let retract = Request::mutation(vec![FactOp::RemoveLabel(Pred::T, Node(1))], "d");
//! server.submit(&[retract]).unwrap();
//! let resp = server.submit(&[req]).unwrap();
//! assert_eq!(resp[0].answer, Answer::Bool(false));
//! ```

#![deny(missing_docs)]

pub mod adaptive;
mod cache;
pub mod catalog;
mod executor;
pub mod metrics;
pub mod plan;
pub mod server;
pub mod wal;
pub mod wire;

pub use adaptive::{AdaptiveConfig, AdaptiveController, RouteInfo};
pub use catalog::{Catalog, CowStats, IndexedInstance, MutationOutcome};
pub use metrics::LatencyStats;
pub use plan::{Answer, Plan, PlanCache, PlanOptions, Query, Strategy, Verdicts};
pub use server::{
    Action, InstanceStats, ReplayMode, ReplayReport, Request, Response, Server, ServerConfig,
    ServerError,
};
pub use wal::{RecoveredInstance, Wal, WalRecord};
pub use wire::{Daemon, TailEvent, WireConfig};
