//! # sirup-server
//!
//! A concurrent certain-answer query service over the workspace's engines —
//! the paper's one-shot library calls packaged as a multi-instance,
//! multi-threaded service (no network layer; the in-process [`Server`] *is*
//! the service, and `sirupctl serve`/`replay` front it).
//!
//! Three layers (see `DESIGN.md`, "Service layer"):
//!
//! * [`catalog`] — a **sharded instance catalog**: named immutable
//!   [`sirup_core::Structure`]s behind per-shard `RwLock`s, each stored with
//!   a prebuilt [`sirup_core::PredIndex`] so no evaluation strategy ever
//!   rescans edge lists;
//! * [`plan`] — a **plan cache**: an LRU of per-program [`plan::Plan`]s
//!   memoising the §4 classifier verdicts, the CQ's core, and — given
//!   Prop. 2 boundedness evidence — the UCQ/FO rewriting, so bounded
//!   programs are answered by rewriting instead of fixpoint;
//! * `executor` + [`server`] — a **batch executor**: a fixed
//!   `std::thread` pool draining a submission queue; batches are grouped by
//!   program so one plan serves the whole group, and each request routes to
//!   the cheapest strategy (rewriting → semi-naive fixpoint → DPLL for
//!   disjunctive sirups).
//!
//! The differential test-suite pins batched, concurrent answers — cold
//! cache, warm cache, and rewriting-served — to direct single-threaded
//! `sirup-engine` evaluation.
//!
//! ```
//! use sirup_server::{Server, Request, Query, Answer};
//! use sirup_core::{parse::st, OneCq};
//!
//! let server = Server::with_defaults();
//! server.load_instance("d", st("F(u), R(u,v), T(v)"));
//! let req = Request {
//!     query: Query::PiGoal(OneCq::parse("F(x), R(x,y), T(y)")),
//!     instance: "d".into(),
//! };
//! let resp = server.submit(&[req]).unwrap();
//! assert_eq!(resp[0].answer, Answer::Bool(true));
//! ```

pub mod catalog;
mod executor;
pub mod metrics;
pub mod plan;
pub mod server;

pub use catalog::{Catalog, IndexedInstance};
pub use metrics::LatencyStats;
pub use plan::{Answer, Plan, PlanCache, PlanOptions, Query, Strategy, Verdicts};
pub use server::{ReplayMode, ReplayReport, Request, Response, Server, ServerConfig, ServerError};
