//! Latency and throughput summaries for batch runs.

use std::time::Duration;

/// Order statistics over a set of request latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency in microseconds.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencyStats {
    /// Summarise a sample set (empty ⇒ all zeros).
    pub fn from_durations(samples: &[Duration]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut us: Vec<u64> = samples.iter().map(|d| d.as_micros() as u64).collect();
        us.sort_unstable();
        let pct = |p: f64| -> u64 {
            let rank = (p / 100.0 * (us.len() - 1) as f64).round() as usize;
            us[rank.min(us.len() - 1)]
        };
        LatencyStats {
            count: us.len(),
            mean_us: us.iter().sum::<u64>() / us.len() as u64,
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            max_us: *us.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = LatencyStats::from_durations(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51); // rank round(0.5 * 99) = 50 → value 51
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(LatencyStats::from_durations(&[]), LatencyStats::default());
        let s = LatencyStats::from_durations(&[Duration::from_micros(7)]);
        assert_eq!(s.p50_us, 7);
        assert_eq!(s.p99_us, 7);
        assert_eq!(s.max_us, 7);
        assert_eq!(s.count, 1);
    }
}
