//! Latency and throughput summaries for batch runs.

use sirup_core::telemetry::nearest_rank;
use std::time::Duration;

/// Order statistics over a set of request latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency in microseconds.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl LatencyStats {
    /// Summarise a sample set (empty ⇒ all zeros).
    ///
    /// Percentiles use the **nearest-rank** method shared with the
    /// telemetry registry's histogram quantiles
    /// ([`sirup_core::telemetry::nearest_rank`]): the p-th percentile of
    /// `n` sorted samples is the value at 1-based rank `⌈p/100 · n⌉` — an
    /// actual sample, never an interpolation, and p100 is exactly the max.
    pub fn from_durations(samples: &[Duration]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut us: Vec<u64> = samples.iter().map(|d| d.as_micros() as u64).collect();
        us.sort_unstable();
        let pct = |p: f64| -> u64 { us[nearest_rank(us.len() as u64, p) as usize - 1] };
        LatencyStats {
            count: us.len(),
            mean_us: us.iter().sum::<u64>() / us.len() as u64,
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            max_us: *us.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let s = LatencyStats::from_durations(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50); // nearest rank ⌈0.50·100⌉ = 50 → value 50
        assert_eq!(s.p95_us, 95); // ⌈0.95·100⌉ = 95
        assert_eq!(s.p99_us, 99); // ⌈0.99·100⌉ = 99
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(LatencyStats::from_durations(&[]), LatencyStats::default());
        let s = LatencyStats::from_durations(&[Duration::from_micros(7)]);
        assert_eq!(s.p50_us, 7);
        assert_eq!(s.p99_us, 7);
        assert_eq!(s.max_us, 7);
        assert_eq!(s.count, 1);
    }

    proptest! {
        // Nearest-rank percentiles are order statistics of the sample, so
        // they must be monotone in p, bounded by the max, and themselves
        // members of the sample set.
        #[test]
        fn percentiles_are_monotone_samples(
            raw in proptest::collection::vec(0u64..1_000_000, 1..200)
        ) {
            let samples: Vec<Duration> =
                raw.iter().map(|&us| Duration::from_micros(us)).collect();
            let s = LatencyStats::from_durations(&samples);
            prop_assert!(s.p50_us <= s.p95_us);
            prop_assert!(s.p95_us <= s.p99_us);
            prop_assert!(s.p99_us <= s.max_us);
            prop_assert_eq!(s.max_us, *raw.iter().max().unwrap());
            prop_assert!(raw.contains(&s.p50_us));
            prop_assert!(raw.contains(&s.p95_us));
            prop_assert!(raw.contains(&s.p99_us));
            prop_assert!(s.mean_us <= s.max_us);
        }
    }
}
