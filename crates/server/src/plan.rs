//! Query plans and the plan cache.
//!
//! A [`Plan`] is everything expensive about a program that does not depend
//! on the data instance: the §4 classifier verdicts, the core of the CQ
//! (from `sirup-hom`), the **compiled hom-search plans** every strategy
//! executes (`sirup-hom::QueryPlan` — static variable order, per-variable
//! domain constraints, join programs), and — when Prop. 2 boundedness
//! evidence is found at the configured horizon — the UCQ rewriting (from
//! `sirup-cactus`) with its FO rendering (from `sirup-fo`). Building a plan
//! costs cactus enumeration, hom searches, and plan compilation; answering
//! with one only *executes* compiled plans. The [`PlanCache`] (LRU, keyed
//! by the query's canonical atom text) amortises all of that across every
//! request for the same program, so warm-path requests skip planning
//! entirely.
//!
//! Strategy routing, cheapest first:
//!
//! 1. **Rewriting** — bounded `Π`/`Σ` queries are answered by evaluating the
//!    depth-`d` UCQ rewriting against the instance's prebuilt index; no
//!    fixpoint at all.
//! 2. **Semi-naive** — unbounded (or unproven) `Π`/`Σ` queries run the
//!    `sirup-engine` fixpoint, candidate-seeded from the index.
//! 3. **DPLL** — disjunctive sirups run the labelling search over the *core*
//!    of `q` (hom-equivalent, so certain answers are unchanged — often
//!    strictly smaller, which shrinks every hom check in the search).
//!
//! Rewriting adoption is *evidence-based* (Prop. 2 at a finite horizon, the
//! honest laptop-scale substitute for the 2ExpTime decision — see
//! `sirup-cactus::bounded`); the differential test-suite pins the served
//! answers to the engine's on every path.

use crate::cache::StampedLru;
use crate::catalog::IndexedInstance;
use sirup_cactus::{find_bound, pi_rewriting, sigma_rewriting, BoundSearch, Boundedness};
use sirup_classifier::{classify_trichotomy, TrichotomyClass};
use sirup_core::program::{pi_q, sigma_q, DSirup};
use sirup_core::telemetry;
use sirup_core::{Node, OneCq, Pred, Structure};
use sirup_engine::containment::minimise_ucq;
use sirup_engine::linear::{linearity, Linearity};
use sirup_engine::ucq::CompiledUcq;
use sirup_engine::{disjunctive, CompiledProgram};
use sirup_hom::{core_of, QueryPlan};

/// A certain-answer query the service can plan and execute.
#[derive(Debug, Clone)]
pub enum Query {
    /// Boolean certain answer to `(Π_q, G)`.
    PiGoal(OneCq),
    /// Unary certain answers to `(Σ_q, P)`.
    SigmaAnswers(OneCq),
    /// Boolean certain answer to `(Δ_q, G)` (`disjoint` adds rule (3)).
    Delta {
        /// The CQ of rule (2).
        cq: Structure,
        /// Include the disjointness constraint (`Δ⁺_q`).
        disjoint: bool,
    },
}

impl Query {
    /// The CQ underlying the query.
    pub fn cq(&self) -> &Structure {
        match self {
            Query::PiGoal(q) | Query::SigmaAnswers(q) => q.structure(),
            Query::Delta { cq, .. } => cq,
        }
    }

    /// Short kind name (`pi`, `sigma`, `delta`, `delta+`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Query::PiGoal(_) => "pi",
            Query::SigmaAnswers(_) => "sigma",
            Query::Delta {
                disjoint: false, ..
            } => "delta",
            Query::Delta { disjoint: true, .. } => "delta+",
        }
    }

    /// Canonical cache key: kind plus the CQ's atom text. Two requests share
    /// a plan iff their keys are equal (syntactic identity; isomorphic but
    /// differently numbered CQs plan separately, which is sound).
    pub fn cache_key(&self) -> String {
        format!("{} {}", self.kind_name(), self.cq())
    }
}

/// The answer to a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// Boolean certain answer (`pi`, `delta`, `delta+`).
    Bool(bool),
    /// Unary certain answers, sorted by node (`sigma`).
    Nodes(Vec<Node>),
    /// Outcome of a mutation request: ops that changed the instance and the
    /// instance's new mutation sequence number (`0` with `applied == 0`
    /// means the instance vanished between validation and execution). The
    /// sequence is per-instance — the k-th mutation since the instance was
    /// loaded reports `seq == k` deterministically, whatever other traffic
    /// the catalog serves — and matches the WAL's durable numbering.
    Applied {
        /// Ops that changed the instance (set semantics).
        applied: usize,
        /// The instance's mutation sequence number after this batch.
        seq: u64,
    },
    /// The request was shed by per-instance admission control before it
    /// entered the scheduler queue (the wire front-end renders this as an
    /// `error overloaded:` reply). Only produced when the adaptive
    /// controller's token bucket is configured and empty — never on the
    /// default static path.
    Overloaded,
}

impl Answer {
    /// Result cardinality for telemetry: answer-set size for `sigma`,
    /// 0/1 for booleans, ops applied for mutations, 0 for shed requests.
    pub fn cardinality(&self) -> u64 {
        match self {
            Answer::Bool(b) => *b as u64,
            Answer::Nodes(nodes) => nodes.len() as u64,
            Answer::Applied { applied, .. } => *applied as u64,
            Answer::Overloaded => 0,
        }
    }
}

/// How a plan answers requests. Every variant carries its *compiled*
/// search artifacts (`sirup-hom` query plans), so the plan cache amortises
/// not just classifier verdicts and rewritings but the whole hom-search
/// compilation: warm-path requests execute plans and never plan again.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Evaluate the depth-`d` UCQ rewriting (bounded queries).
    Rewriting {
        /// The (minimised) rewriting with each disjunct compiled to a
        /// query plan. The disjunct patterns remain reachable through the
        /// plans; the FO rendering is memoised separately in [`Plan::fo`].
        compiled: CompiledUcq,
        /// The Prop. 2 depth at which it was extracted.
        depth: u32,
    },
    /// Run the semi-naive datalog fixpoint.
    SemiNaive {
        /// `Π_q` or `Σ_q` with every rule body compiled to a query plan.
        program: CompiledProgram,
    },
    /// Run the DPLL labelling search on the cored disjunctive sirup.
    Dpll {
        /// The d-sirup with `cq` replaced by its core.
        dsirup: DSirup,
        /// The compiled search plan of the cored CQ (boxed to keep the
        /// enum's variants comparably sized).
        plan: Box<QueryPlan>,
    },
}

impl Strategy {
    /// Stable short name for reports (`rewriting`, `semi-naive`, `dpll`).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Rewriting { .. } => "rewriting",
            Strategy::SemiNaive { .. } => "semi-naive",
            Strategy::Dpll { .. } => "dpll",
        }
    }
}

/// Per-program classifier facts memoised in the plan.
#[derive(Debug, Clone)]
pub struct Verdicts {
    /// Linearity of `Σ_q` (for `pi`/`sigma` queries).
    pub linearity: Option<Linearity>,
    /// Theorem 11 verdict for the CQ, when the decider applies.
    pub trichotomy: Option<TrichotomyClass>,
    /// Node count of the CQ's core.
    pub core_nodes: usize,
    /// Whether the CQ is its own core (minimal).
    pub minimal: bool,
}

/// Knobs for plan construction.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Largest Prop. 2 depth bound to certify.
    pub max_depth: u32,
    /// Horizon for boundedness evidence (must exceed `max_depth`).
    pub horizon: u32,
    /// Cactus-shape cap for enumeration (hit ⇒ fall back to the fixpoint).
    pub cap: usize,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            max_depth: 1,
            horizon: 3,
            cap: 600,
        }
    }
}

/// A fully built, instance-independent query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The query's [`Query::cache_key`], rendered once at build time (the
    /// warm materialisation path probes per request and must not re-format
    /// the CQ every time).
    cache_key: String,
    /// The planned query.
    pub query: Query,
    /// The chosen evaluation strategy.
    pub strategy: Strategy,
    /// Memoised classifier facts.
    pub verdicts: Verdicts,
    /// FO rendering of the rewriting, when one was adopted.
    pub fo: Option<String>,
}

impl Plan {
    /// The query's cache key, rendered once at build time (also the
    /// "program" label in telemetry's per-(program, instance) table).
    pub fn key(&self) -> &str {
        &self.cache_key
    }

    /// Build the plan for `query`.
    pub fn build(query: Query, opts: &PlanOptions) -> Plan {
        telemetry::counter_add(telemetry::Counter::PlanCompiles, 1);
        let _t = telemetry::timed(telemetry::Family::PlanCompile, "plan_compile");
        let cache_key = query.cache_key();
        let (core, _) = core_of(query.cq());
        let minimal = core.node_count() == query.cq().node_count();
        let trichotomy = classify_trichotomy(query.cq()).ok();
        match &query {
            Query::PiGoal(q) | Query::SigmaAnswers(q) => {
                let sigma = matches!(query, Query::SigmaAnswers(_));
                let lin = Some(linearity(&sigma_q(q)));
                let search = BoundSearch {
                    max_d: opts.max_depth,
                    horizon: opts.horizon,
                    cap: opts.cap,
                    sigma,
                };
                let rewriting = match find_bound(q, search) {
                    Boundedness::BoundedEvidence { d, .. } => if sigma {
                        sigma_rewriting(q, d, opts.cap)
                    } else {
                        pi_rewriting(q, d, opts.cap)
                    }
                    .map(|ucq| (minimise_ucq(&ucq), d)),
                    _ => None,
                };
                let (strategy, fo) = match rewriting {
                    Some((ucq, depth)) => {
                        let fo = format!("{}", sirup_fo::ucq_to_fo(&ucq));
                        let compiled = ucq.compile();
                        (Strategy::Rewriting { compiled, depth }, Some(fo))
                    }
                    None => {
                        let program = if sigma { sigma_q(q) } else { pi_q(q) };
                        (
                            Strategy::SemiNaive {
                                program: CompiledProgram::new(&program),
                            },
                            None,
                        )
                    }
                };
                Plan {
                    cache_key,
                    verdicts: Verdicts {
                        linearity: lin,
                        trichotomy,
                        core_nodes: core.node_count(),
                        minimal,
                    },
                    query,
                    strategy,
                    fo,
                }
            }
            Query::Delta { disjoint, .. } => {
                // Coring is sound here: the DPLL search consults `q` only
                // through `hom_exists(q, ·)`, which hom-equivalence
                // preserves.
                let dsirup = DSirup {
                    cq: core.clone(),
                    disjoint: *disjoint,
                };
                let plan = Box::new(QueryPlan::compile(&dsirup.cq));
                Plan {
                    cache_key,
                    verdicts: Verdicts {
                        linearity: None,
                        trichotomy,
                        core_nodes: core.node_count(),
                        minimal,
                    },
                    query,
                    strategy: Strategy::Dpll { dsirup, plan },
                    fo: None,
                }
            }
        }
    }

    /// Answer the planned query over one catalog instance. Warm path: only
    /// compiled plans execute here — no search planning of any kind.
    ///
    /// Strategy interaction with the live-instance machinery:
    ///
    /// * **Rewriting** (bounded programs) answers straight from the
    ///   snapshot's data + index — the mutation fast path: rewritten
    ///   programs need no fixpoint, so mutations never pay maintenance for
    ///   them and a fresh snapshot answers correctly with zero extra work.
    /// * **Semi-naive** answers from the snapshot's live
    ///   [`sirup_engine::MaterializedFixpoint`] for this program: built on first use,
    ///   carried forward *incrementally* by catalog mutations, so repeated
    ///   reads are lookups instead of fixpoint runs.
    /// * **DPLL** searches the labellings of the snapshot's data directly.
    pub fn answer(&self, inst: &IndexedInstance) -> Answer {
        self.answer_ctx(inst, None)
    }

    /// As [`Plan::answer`], with optional **intra-request parallelism**: a
    /// [`ParCtx`](sirup_core::ParCtx) splits the strategy's heavy loops —
    /// rewriting disjuncts and answer sweeps, semi-naive delta checks and
    /// first materialisation builds, DPLL bound checks — into subtasks on
    /// the shared scheduler. `None` is the exact sequential path (the
    /// differential oracle); answers are identical either way.
    pub fn answer_ctx(
        &self,
        inst: &IndexedInstance,
        par: Option<sirup_core::ParCtx<'_>>,
    ) -> Answer {
        self.answer_routed(inst, par, true)
    }

    /// As [`Plan::answer_ctx`], but letting the caller decide whether a
    /// semi-naive program *attaches* a maintained materialisation
    /// (`materialise = true`, the static default) or evaluates the
    /// fixpoint from scratch against the snapshot without attaching
    /// (`materialise = false` — what an adaptive controller picks while a
    /// program's read run has not yet cleared its promotion threshold).
    /// Both paths compute the same unique fixpoint, so the answer is
    /// bit-identical either way; only the maintenance cost profile
    /// differs. Non-semi-naive strategies ignore the flag.
    pub fn answer_routed(
        &self,
        inst: &IndexedInstance,
        par: Option<sirup_core::ParCtx<'_>>,
        materialise: bool,
    ) -> Answer {
        // Every direct-evaluation path reads through the snapshot's cached
        // CSR view (built lazily, `None` below the freeze gate). The
        // instance is immutable, so full mode — labels included — is sound
        // everywhere; the materialised path maintains its own fixpoint
        // state and does not consult the frozen view.
        match (&self.strategy, &self.query) {
            (Strategy::Rewriting { compiled, .. }, Query::PiGoal(_)) => Answer::Bool(
                compiled.eval_boolean_snap(&inst.data, Some(&inst.index), inst.frozen(), par),
            ),
            (Strategy::Rewriting { compiled, .. }, Query::SigmaAnswers(_)) => Answer::Nodes(
                compiled.answers_snap(&inst.data, Some(&inst.index), inst.frozen(), par),
            ),
            (Strategy::SemiNaive { program }, Query::PiGoal(_)) => {
                if materialise {
                    Answer::Bool(self.materialization(program, inst, par).holds(Pred::GOAL))
                } else {
                    Answer::Bool(
                        program
                            .evaluate_snapshot(&inst.data, Some(&inst.index), inst.frozen(), par)
                            .holds(Pred::GOAL),
                    )
                }
            }
            (Strategy::SemiNaive { program }, Query::SigmaAnswers(_)) => {
                if materialise {
                    Answer::Nodes(self.materialization(program, inst, par).answers(Pred::P))
                } else {
                    Answer::Nodes(
                        program
                            .evaluate_snapshot(&inst.data, Some(&inst.index), inst.frozen(), par)
                            .answers(Pred::P)
                            .to_vec(),
                    )
                }
            }
            (Strategy::Dpll { dsirup, plan }, Query::Delta { .. }) => {
                Answer::Bool(disjunctive::certain_answer_dsirup_planned_snap(
                    dsirup,
                    plan,
                    &inst.data,
                    inst.frozen(),
                    par,
                ))
            }
            _ => unreachable!("strategy/query kind mismatch"),
        }
    }

    /// Observed order inversion of this plan's compiled search, if any:
    /// `(first_var_avg, min_avg, samples)` where `first_var_avg` is the
    /// observed average post-AC-3 domain of the variable the static order
    /// executes *first* and `min_avg` the smallest observed average over
    /// all variables. `None` for non-DPLL strategies or before the first
    /// execution. A first variable whose observed domain dwarfs another
    /// variable's is the signal adaptive re-planning acts on.
    pub fn observed_inversion(&self) -> Option<(f64, f64, u64)> {
        let Strategy::Dpll { plan, .. } = &self.strategy else {
            return None;
        };
        let est = plan.stats().observed_domains()?;
        let first = *plan.order().first()?;
        let first_avg = est[first.index()];
        let min_avg = est.iter().copied().fold(f64::INFINITY, f64::min);
        Some((first_avg, min_avg, plan.stats().samples()))
    }

    /// Recompile this plan's DPLL search with the observed per-variable
    /// domain estimates, returning a fresh [`Plan`] (same key, query,
    /// verdicts) whose variable order follows measurement instead of the
    /// static selectivity score. `None` for non-DPLL strategies or before
    /// any execution was recorded. The caller is expected to differential-
    /// check the new plan against this one before swapping it into the
    /// cache (the old plan is the oracle).
    pub fn replanned_with_observed(&self) -> Option<Plan> {
        let Strategy::Dpll { dsirup, plan } = &self.strategy else {
            return None;
        };
        let est = plan.stats().observed_domains()?;
        let replanned = Box::new(QueryPlan::compile_with_domain_estimates(&dsirup.cq, &est));
        Some(Plan {
            cache_key: self.cache_key.clone(),
            query: self.query.clone(),
            strategy: Strategy::Dpll {
                dsirup: dsirup.clone(),
                plan: replanned,
            },
            verdicts: self.verdicts.clone(),
            fo: self.fo.clone(),
        })
    }

    /// The live materialisation of this plan's program over `inst`.
    fn materialization(
        &self,
        program: &CompiledProgram,
        inst: &IndexedInstance,
        par: Option<sirup_core::ParCtx<'_>>,
    ) -> std::sync::Arc<sirup_engine::MaterializedFixpoint> {
        inst.materialization(&self.cache_key, || {
            sirup_engine::MaterializedFixpoint::from_compiled_indexed_ctx(
                program.clone(),
                &inst.data,
                &inst.index,
                par,
            )
        })
    }
}

/// An LRU cache of built plans, keyed by [`Query::cache_key`].
#[derive(Debug)]
pub struct PlanCache {
    lru: StampedLru<std::sync::Arc<Plan>>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (at least 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            lru: StampedLru::new(capacity.max(1)),
        }
    }

    /// Fetch the plan for `query`, building (and caching) it on a miss.
    /// The build runs outside the cache lock: plan construction runs
    /// cactus enumeration and hom searches, and must not serialise
    /// unrelated programs. Concurrent misses for the same key duplicate
    /// work harmlessly.
    pub fn get_or_build(&self, query: &Query, opts: &PlanOptions) -> std::sync::Arc<Plan> {
        let _t = telemetry::timed(telemetry::Family::CacheLookup, "plan_cache_lookup");
        let key = query.cache_key();
        if let Some(plan) = self.lru.get(&key) {
            return plan;
        }
        let plan = std::sync::Arc::new(Plan::build(query.clone(), opts));
        self.lru.insert(key, plan.clone());
        plan
    }

    /// The cached plan for `key`, if present (refreshes its LRU stamp and
    /// counts a hit/miss like any lookup).
    pub fn get(&self, key: &str) -> Option<std::sync::Arc<Plan>> {
        self.lru.get(key)
    }

    /// Probe for `key` without counting a hit or miss and without touching
    /// recency — used by the adaptive read-run accounting on answer-cache
    /// hits, which must not skew the plan-cache statistics.
    pub fn peek(&self, key: &str) -> Option<std::sync::Arc<Plan>> {
        self.lru.peek(key)
    }

    /// Atomically replace the plan under `key` (insert if absent). This is
    /// the adaptive re-planning swap: requests already holding the old
    /// `Arc` finish on it — answers are order-independent, so the
    /// interleaving is invisible — and every later fetch gets the new
    /// plan.
    pub fn swap(&self, key: &str, plan: std::sync::Arc<Plan>) {
        self.lru.insert(key.to_owned(), plan);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.lru.stats()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::parse::st;

    fn q5() -> OneCq {
        OneCq::parse("T(b), F(c), T(c), F(e), R(a,b), R(a,c), R(b,d), R(c,e), R(d,g)")
    }

    #[test]
    fn bounded_pi_plans_to_rewriting() {
        let plan = Plan::build(Query::PiGoal(q5()), &PlanOptions::default());
        assert_eq!(plan.strategy.name(), "rewriting");
        assert!(plan.fo.as_deref().is_some_and(|f| f.contains('∃')));
    }

    #[test]
    fn unbounded_pi_plans_to_seminaive() {
        let q4 = OneCq::parse("F(x), R(y,x), R(y,z), T(z)");
        let plan = Plan::build(Query::PiGoal(q4.clone()), &PlanOptions::default());
        assert_eq!(plan.strategy.name(), "semi-naive");
        assert!(plan.fo.is_none());
        assert_eq!(
            plan.verdicts.linearity,
            Some(sirup_engine::linear::Linearity::Linear)
        );
        let sigma = Plan::build(Query::SigmaAnswers(q4), &PlanOptions::default());
        assert_eq!(sigma.strategy.name(), "semi-naive");
    }

    #[test]
    fn delta_plans_to_cored_dpll() {
        // Duplicated branches collapse in the core.
        let q = st("F(x), R(x,y1), T(y1), R(x,y2), T(y2)");
        let plan = Plan::build(
            Query::Delta {
                cq: q.clone(),
                disjoint: false,
            },
            &PlanOptions::default(),
        );
        let Strategy::Dpll { dsirup, .. } = &plan.strategy else {
            panic!("expected dpll");
        };
        assert!(dsirup.cq.node_count() < q.node_count());
        assert!(!plan.verdicts.minimal);
        assert_eq!(plan.verdicts.core_nodes, dsirup.cq.node_count());
    }

    #[test]
    fn cache_hits_and_lru_eviction() {
        let cache = PlanCache::new(2);
        let opts = PlanOptions::default();
        let qa = Query::Delta {
            cq: st("F(x), R(x,y), T(y)"),
            disjoint: false,
        };
        let qb = Query::Delta {
            cq: st("T(x), R(x,y), F(y)"),
            disjoint: false,
        };
        let qc = Query::Delta {
            cq: st("F(x), S(x,y), T(y)"),
            disjoint: false,
        };
        let a1 = cache.get_or_build(&qa, &opts);
        let a2 = cache.get_or_build(&qa, &opts);
        assert!(std::sync::Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.stats(), (1, 1));
        cache.get_or_build(&qb, &opts);
        // Touch qa so qb is the LRU victim when qc arrives.
        cache.get_or_build(&qa, &opts);
        cache.get_or_build(&qc, &opts);
        assert_eq!(cache.len(), 2);
        let (h0, m0) = cache.stats();
        cache.get_or_build(&qb, &opts); // evicted → miss (and this evicts qa)
        let (h1, m1) = cache.stats();
        assert_eq!(h1, h0);
        assert_eq!(m1, m0 + 1);
        cache.get_or_build(&qc, &opts); // still cached → hit
        assert_eq!(cache.stats().0, h1 + 1);
    }

    #[test]
    fn delta_plus_key_differs_from_delta() {
        let cq = st("F(x), R(x,y), T(y)");
        let d = Query::Delta {
            cq: cq.clone(),
            disjoint: false,
        };
        let dp = Query::Delta { cq, disjoint: true };
        assert_ne!(d.cache_key(), dp.cache_key());
        assert_eq!(d.kind_name(), "delta");
        assert_eq!(dp.kind_name(), "delta+");
    }
}
