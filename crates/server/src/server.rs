//! The [`Server`]: catalog + plan cache + answer cache + worker pool, and
//! workload replay.
//!
//! `submit` is the batch entry point: it validates every request against the
//! catalog, resolves one snapshot per request (reads see the catalog as of
//! submission; mutations reserve in-order tickets), fetches (or builds) one
//! plan per distinct program in the batch, probes the version-keyed answer
//! cache, fans the remaining jobs out to the worker pool, and reassembles
//! responses in request order. `replay` drives a whole [`TrafficSpec`]
//! either closed-loop (one maximal batch — a throughput run) or open-loop
//! (submission paced by the spec's virtual arrival offsets — a
//! latency-under-load run) and aggregates a [`ReplayReport`].
//!
//! ## Read/write semantics
//!
//! A query in a batch answers against the instance snapshot current at
//! submission time; mutations apply in submission order per instance
//! (ticketed) and produce a fresh snapshot version. Queries submitted
//! *after* a mutation's batch observe its effects; queries racing it in the
//! same batch observe the pre-batch snapshot. The answer cache is keyed by
//! `(program, instance, version)`, so a mutation invalidates cached answers
//! simply by bumping the version — stale entries can never be served.

use crate::adaptive::{AdaptiveConfig, AdaptiveController};
use crate::catalog::{Catalog, MutationOutcome};
use crate::executor::{AdaptiveRuntime, Completion, Job, Pool, Work};
use crate::metrics::LatencyStats;
use crate::plan::{Answer, PlanCache, PlanOptions, Query, Strategy};
use crate::wal::{Wal, WalRecord};
use sirup_core::fx::FxHashMap;
use sirup_core::telemetry;
use sirup_core::{sync, FactOp, OneCq, ParCtx, Scheduler, Structure};
use sirup_engine::MaterializationStats;
use sirup_workloads::traffic::{QueryKind, TrafficAction, TrafficRequest, TrafficSpec};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads in the shared scheduler (at least 1). The same
    /// workers run request-level jobs *and* intra-request subtasks.
    pub threads: usize,
    /// Intra-request fan-out: `> 1` lets one request split its own
    /// evaluation (plan enumeration chunks, semi-naive delta chunks, UCQ
    /// disjuncts, materialisation carry-forward) into subtasks on the
    /// shared workers. `1` (the default) keeps every request on the exact
    /// sequential evaluation path — zero scheduling overhead, the
    /// pre-parallel behaviour.
    pub parallelism: usize,
    /// Minimum work-set size (root-domain cardinality, candidate count,
    /// node count) before an intra-request split happens; below it even a
    /// `parallelism > 1` server evaluates sequentially, so small instances
    /// never pay fan-out overhead.
    pub par_threshold: usize,
    /// Catalog shards (at least 1).
    pub shards: usize,
    /// Plan-cache capacity (at least 1).
    pub plan_cache: usize,
    /// Answer-cache capacity (0 disables answer caching — benches that
    /// measure evaluation cost, not cache hits, run with 0).
    pub answer_cache: usize,
    /// Plan construction knobs.
    pub plan: PlanOptions,
    /// Adaptive routing knobs (disabled by default — the static policy).
    pub adaptive: AdaptiveConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            parallelism: 1,
            par_threshold: 64,
            shards: 8,
            plan_cache: 64,
            answer_cache: 256,
            plan: PlanOptions::default(),
            adaptive: AdaptiveConfig::default(),
        }
    }
}

/// What a request asks of its target instance.
#[derive(Debug, Clone)]
pub enum Action {
    /// A certain-answer query.
    Query(Query),
    /// A fact-level mutation batch, applied in order.
    Mutate(Vec<FactOp>),
}

/// One request: an action against a named catalog instance.
#[derive(Debug, Clone)]
pub struct Request {
    /// The action.
    pub action: Action,
    /// Target instance name.
    pub instance: String,
}

impl Request {
    /// A query request.
    pub fn query(query: Query, instance: impl Into<String>) -> Request {
        Request {
            action: Action::Query(query),
            instance: instance.into(),
        }
    }

    /// A mutation request.
    pub fn mutation(ops: Vec<FactOp>, instance: impl Into<String>) -> Request {
        Request {
            action: Action::Mutate(ops),
            instance: instance.into(),
        }
    }

    /// Convert a workload request (re-validating 1-CQ kinds).
    pub fn from_traffic(r: &TrafficRequest) -> Result<Request, ServerError> {
        let action = match &r.action {
            TrafficAction::Query { kind, cq } => Action::Query(match kind {
                QueryKind::PiGoal => Query::PiGoal(
                    OneCq::new(cq.clone()).map_err(|e| ServerError::BadQuery(e.to_string()))?,
                ),
                QueryKind::SigmaAnswers => Query::SigmaAnswers(
                    OneCq::new(cq.clone()).map_err(|e| ServerError::BadQuery(e.to_string()))?,
                ),
                QueryKind::Delta => Query::Delta {
                    cq: cq.clone(),
                    disjoint: false,
                },
                QueryKind::DeltaPlus => Query::Delta {
                    cq: cq.clone(),
                    disjoint: true,
                },
            }),
            TrafficAction::Mutate { ops } => Action::Mutate(ops.clone()),
        };
        Ok(Request {
            action,
            instance: r.instance.clone(),
        })
    }
}

/// One response, positionally matching its request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The certain answer (or mutation outcome).
    pub answer: Answer,
    /// Which strategy served it (`rewriting`, `semi-naive`, `dpll`,
    /// `mutation`, `cached`).
    pub strategy: &'static str,
    /// Queue wait + evaluation time.
    pub latency: Duration,
}

/// Errors surfaced by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// A request targeted an instance the catalog does not hold.
    UnknownInstance(String),
    /// A `pi`/`sigma` request whose CQ is not a 1-CQ.
    BadQuery(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownInstance(n) => write!(f, "unknown instance {n:?}"),
            ServerError::BadQuery(m) => write!(f, "bad query: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// How [`Server::replay`] paces submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Submit the whole stream as one batch and drain at full speed.
    Closed,
    /// Pace submission by the spec's virtual arrival offsets.
    Open,
}

/// Aggregate results of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Requests served (queries + mutations).
    pub total: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Request counts per action keyword (`pi`, …, `mutate`).
    pub per_kind: Vec<(String, usize)>,
    /// Request counts per serving strategy.
    pub per_strategy: Vec<(String, usize)>,
    /// Mutation requests served.
    pub mutations: usize,
    /// Mutation ops that changed an instance.
    pub mutation_ops_applied: usize,
    /// Latency order statistics.
    pub latency: LatencyStats,
    /// Plan-cache `(hits, misses)` over the whole server lifetime.
    pub plan_cache: (u64, u64),
    /// Answer-cache `(hits, misses)` over the whole server lifetime.
    pub answer_cache: (u64, u64),
    /// Distinct plans resident after the run.
    pub plans_resident: usize,
    /// Answers in request order (for differential checking).
    pub answers: Vec<Answer>,
}

impl ReplayReport {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.total as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Mutation requests per second.
    pub fn mutation_throughput(&self) -> f64 {
        self.mutations as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "replayed {} requests on {} worker thread(s) in {:.3} ms ({:.0} req/s)",
            self.total,
            self.threads,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput()
        )
        .unwrap();
        let fmt_counts = |pairs: &[(String, usize)]| {
            pairs
                .iter()
                .map(|(k, n)| format!("{k} {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        writeln!(out, "kinds     : {}", fmt_counts(&self.per_kind)).unwrap();
        writeln!(out, "strategies: {}", fmt_counts(&self.per_strategy)).unwrap();
        writeln!(
            out,
            "mutations : {} request(s), {} op(s) applied ({:.0} mut/s)",
            self.mutations,
            self.mutation_ops_applied,
            self.mutation_throughput()
        )
        .unwrap();
        writeln!(
            out,
            "latency   : p50 {}µs  p95 {}µs  p99 {}µs  max {}µs  mean {}µs",
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.p99_us,
            self.latency.max_us,
            self.latency.mean_us
        )
        .unwrap();
        let (hits, misses) = self.plan_cache;
        let (ahits, amisses) = self.answer_cache;
        writeln!(
            out,
            "plan cache: {} resident, {hits} hit(s) / {misses} miss(es); \
             answer cache {ahits} hit(s) / {amisses} miss(es)",
            self.plans_resident
        )
        .unwrap();
        out
    }
}

/// Point-in-time statistics of one live catalog instance (for
/// `sirupctl stats`).
#[derive(Debug, Clone)]
pub struct InstanceStats {
    /// Instance name.
    pub name: String,
    /// Current snapshot version.
    pub version: u64,
    /// Per-instance mutation sequence number (0 = freshly loaded).
    pub seq: u64,
    /// Nodes in the instance.
    pub nodes: usize,
    /// Unary atoms.
    pub unary_atoms: usize,
    /// Binary atoms.
    pub binary_atoms: usize,
    /// Structural sharing of the live snapshot with the version it was
    /// mutated from (zero shared pages right after a load).
    pub cow: crate::catalog::CowStats,
    /// Bytes the live facts would occupy stored flat (no page granularity,
    /// no copy-on-write retention). `cow.retained_bytes - live_bytes` is
    /// the versioning overhead a version-GC pass could reclaim at most.
    pub live_bytes: usize,
    /// Heap bytes of the snapshot's cached CSR read view, 0 if none has
    /// been built (small instance, or no query has touched this version).
    pub frozen_bytes: usize,
    /// Per-program materialisation stats, sorted by program key.
    pub materializations: Vec<(String, MaterializationStats)>,
}

/// A version-keyed LRU of full answers: `(program, instance, version) →`
/// [`Answer`]. Mutations invalidate by construction — they bump the
/// instance version, so stale keys are never probed again and age out of
/// the LRU. Capacity 0 disables it.
type AnswerCache = crate::cache::StampedLru<Answer>;

/// The concurrent certain-answer query-and-mutation service.
pub struct Server {
    config: ServerConfig,
    catalog: Arc<Catalog>,
    plans: Arc<PlanCache>,
    answers: AnswerCache,
    pool: Pool,
    /// The feedback controller (inert when [`AdaptiveConfig::enabled`] is
    /// off — every consultation short-circuits to the static policy).
    adaptive: Arc<AdaptiveController>,
    /// Serialises mutation-ticket reservation with the queue append (see
    /// [`Server::enqueue`]): per instance, ticket order must equal queue
    /// order, or a worker blocked on a predecessor ticket could starve the
    /// pool. When the server is durable, the same critical section also
    /// appends the WAL record, so per-instance log order equals ticket
    /// order — the recovery fold's whole correctness argument.
    mutation_order: Mutex<()>,
    /// Write-ahead durability, present on [`Server::open_durable`] servers:
    /// every catalog-shaping event (load, mutate, remove) is fsync'd to the
    /// log before it applies.
    wal: Option<Mutex<Wal>>,
    /// Compaction cadence: snapshot after this many logged mutations
    /// (0 disables automatic snapshots; [`Server::snapshot_now`] is always
    /// available).
    snapshot_every: AtomicU64,
    /// Mutations logged since the last snapshot.
    since_snapshot: AtomicU64,
}

/// How one submitted request executes.
enum Route {
    /// Serve from the answer cache (hit at submission time).
    Cached(Answer),
    /// Shed by admission control: answered [`Answer::Overloaded`] without
    /// ever touching the pool.
    Shed,
    /// Evaluate on the pool; remember the answer under this key (if some).
    Evaluate(Work, Option<String>),
}

impl Server {
    /// Build a server (spawns the shared scheduler's workers immediately).
    pub fn new(config: ServerConfig) -> Server {
        let plans = Arc::new(PlanCache::new(config.plan_cache));
        let adaptive = Arc::new(AdaptiveController::new(config.adaptive));
        let hooks = config.adaptive.enabled.then(|| {
            Arc::new(AdaptiveRuntime {
                ctrl: Arc::clone(&adaptive),
                plans: Arc::clone(&plans),
            })
        });
        let pool = Pool::new(
            config.threads,
            config.parallelism,
            config.par_threshold,
            hooks,
        );
        let mut catalog = Catalog::new(config.shards);
        if config.parallelism > 1 {
            catalog = catalog.with_mat_parallelism(Arc::clone(pool.scheduler()));
        }
        Server {
            catalog: Arc::new(catalog),
            plans,
            answers: AnswerCache::new(config.answer_cache),
            pool,
            adaptive,
            mutation_order: Mutex::new(()),
            wal: None,
            snapshot_every: AtomicU64::new(0),
            since_snapshot: AtomicU64::new(0),
            config,
        }
    }

    /// A server with [`ServerConfig::default`].
    pub fn with_defaults() -> Server {
        Server::new(ServerConfig::default())
    }

    /// Build a **durable** server backed by the write-ahead log in
    /// `data_dir` (created if needed): the directory's snapshot + log are
    /// recovered into the catalog — each instance at exactly the data and
    /// per-instance mutation sequence it had reached — and every later
    /// load/mutate/remove is fsync'd to the log before it applies.
    pub fn open_durable(
        config: ServerConfig,
        data_dir: impl Into<PathBuf>,
    ) -> std::io::Result<Server> {
        let (wal, recovered) = Wal::open(data_dir)?;
        let mut server = Server::new(config);
        for inst in recovered {
            server.catalog.restore(inst.name, inst.data, inst.seq);
        }
        server.wal = Some(Mutex::new(wal));
        Ok(server)
    }

    /// Is this server writing a WAL?
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Snapshot automatically after every `ops` logged mutations (0
    /// disables). The daemon's housekeeping thread polls
    /// [`Server::snapshot_due`] — mutation paths only bump a counter, so a
    /// worker thread never blocks inside compaction's quiesce.
    pub fn set_snapshot_every(&self, ops: u64) {
        self.snapshot_every.store(ops, Ordering::Relaxed);
    }

    /// Has the auto-snapshot threshold been crossed?
    pub fn snapshot_due(&self) -> bool {
        let every = self.snapshot_every.load(Ordering::Relaxed);
        every > 0 && self.since_snapshot.load(Ordering::Relaxed) >= every
    }

    /// Snapshot the catalog and compact the log now. Blocks new mutation
    /// reservations, waits for in-flight tickets to apply (so the snapshot
    /// reflects every logged record), then writes snapshot + truncated log
    /// atomically (see `wal` module docs for the crash windows). No-op on a
    /// non-durable server.
    ///
    /// Prefer calling from a plain thread (the daemon's housekeeping
    /// loop): the quiesce wait is satisfied by scheduler workers applying
    /// outstanding tickets, so a scheduler worker blocking here while
    /// ticketed batch jobs sit queued could starve the very jobs it waits
    /// on. Wire-only traffic is safe either way — connection jobs reserve
    /// and apply their ticket in one un-yielding step, so every
    /// outstanding ticket is held by a *running* worker.
    pub fn snapshot_now(&self) -> std::io::Result<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let _order = sync::lock(&self.mutation_order);
        self.catalog.quiesce();
        let names = self.catalog.names();
        let insts: Vec<_> = names.iter().filter_map(|n| self.catalog.get(n)).collect();
        let entries: Vec<(String, u64, &Structure)> = insts
            .iter()
            .map(|i| (i.name.clone(), i.seq, &i.data))
            .collect();
        sync::lock(wal).compact(&entries)?;
        self.since_snapshot.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// The shared work-stealing scheduler (connection jobs ride on it).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        self.pool.scheduler()
    }

    /// The instance catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Answer-cache `(hits, misses)` so far.
    pub fn answer_cache_stats(&self) -> (u64, u64) {
        self.answers.stats()
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Lifetime counters of the shared scheduler (tasks spawned, steals,
    /// queue high-water mark) — surfaced by `sirupctl stats`.
    pub fn scheduler_stats(&self) -> sirup_core::SchedStats {
        self.pool.stats()
    }

    /// Load (or replace) a named instance. On a durable server the load is
    /// logged first: the critical section waits for in-flight mutations to
    /// the whole catalog to apply (a load resets the instance's mutation
    /// sequence, so logged-but-unapplied mutations must not straddle it).
    pub fn load_instance(&self, name: impl Into<String>, data: Structure) -> bool {
        let name = name.into();
        if let Some(wal) = &self.wal {
            let _order = sync::lock(&self.mutation_order);
            self.catalog.quiesce();
            sync::lock(wal)
                .append(&WalRecord::Load {
                    name: name.clone(),
                    nodes: data.node_count() as u32,
                    ops: data.to_ops(),
                })
                .expect("wal append (load)");
            self.catalog.insert(name, data)
        } else {
            self.catalog.insert(name, data)
        }
    }

    /// Drop a named instance (logged first on a durable server).
    pub fn remove_instance(&self, name: &str) -> bool {
        if let Some(wal) = &self.wal {
            let _order = sync::lock(&self.mutation_order);
            self.catalog.quiesce();
            sync::lock(wal)
                .append(&WalRecord::Remove {
                    name: name.to_owned(),
                })
                .expect("wal append (remove)");
        }
        self.catalog.remove(name)
    }

    /// Apply a mutation batch directly (outside any request batch), in
    /// ticket order with respect to concurrent mutation requests. On a
    /// durable server the record is fsync'd to the WAL — under the same
    /// critical section that reserves the ticket, so per-instance log
    /// order equals apply order — *before* the catalog changes: by the
    /// time the caller sees the outcome, the mutation is recoverable.
    pub fn mutate_instance(
        &self,
        name: &str,
        ops: &[FactOp],
    ) -> Result<MutationOutcome, ServerError> {
        if self.catalog.get(name).is_none() {
            return Err(ServerError::UnknownInstance(name.to_owned()));
        }
        let ticket = {
            let _order = sync::lock(&self.mutation_order);
            let ticket = self.catalog.reserve_ticket(name);
            if let Some(wal) = &self.wal {
                sync::lock(wal)
                    .append(&WalRecord::Mutate {
                        name: name.to_owned(),
                        seq: ticket + 1,
                        ops: ops.to_vec(),
                    })
                    .expect("wal append (mutate)");
                self.since_snapshot.fetch_add(1, Ordering::Relaxed);
            }
            ticket
        };
        self.catalog
            .mutate_ticketed(name, ops, ticket)
            .ok_or_else(|| ServerError::UnknownInstance(name.to_owned()))
    }

    /// Answer one request **inline on the calling thread** — the wire
    /// front-end's entry point. Connection handlers already run as
    /// detached scheduler jobs, so they must not round-trip through
    /// [`Server::submit`]'s reply channel (a worker blocking on work that
    /// sits behind it in the injector is a deadlock); instead they
    /// evaluate here, with intra-request parallelism still fanning out to
    /// the other workers when configured.
    ///
    /// Inline mutations stay deadlock-free under the ticket discipline
    /// because reservation, WAL append, and apply happen in one
    /// un-yielding step: every earlier-ticket holder is simultaneously
    /// *running* on some worker (never parked in a queue), so the wait in
    /// `mutate_ticketed` always bottoms out at the next-to-apply ticket
    /// making progress.
    pub fn answer_one(&self, req: &Request) -> Result<Response, ServerError> {
        let started = Instant::now();
        match &req.action {
            Action::Mutate(ops) => {
                let _req_span = telemetry::tracing_enabled()
                    .then(|| telemetry::request_span(format!("mutation @ {}", req.instance)));
                let out = self.mutate_instance(&req.instance, ops)?;
                let latency = started.elapsed();
                telemetry::record_request(
                    "mutation",
                    &req.instance,
                    "mutation",
                    latency,
                    out.applied as u64,
                );
                Ok(Response {
                    answer: Answer::Applied {
                        applied: out.applied,
                        seq: out.seq,
                    },
                    strategy: "mutation",
                    latency,
                })
            }
            Action::Query(query) => {
                let inst = self
                    .catalog
                    .get(&req.instance)
                    .ok_or_else(|| ServerError::UnknownInstance(req.instance.clone()))?;
                let cache_key = query.cache_key();
                let _req_span = telemetry::tracing_enabled()
                    .then(|| telemetry::request_span(format!("{cache_key} @ {}", inst.name)));
                let answer_key = self
                    .answers
                    .enabled()
                    .then(|| format!("{cache_key}|{}#{}", inst.name, inst.version));
                if let Some(key) = &answer_key {
                    if let Some(answer) = self.answers.get(key) {
                        self.note_cached_read(&cache_key, &inst.name);
                        let latency = started.elapsed();
                        telemetry::record_request(
                            &cache_key,
                            &inst.name,
                            "cached",
                            latency,
                            answer.cardinality(),
                        );
                        return Ok(Response {
                            answer,
                            strategy: "cached",
                            latency,
                        });
                    }
                }
                if !self.adaptive.admit(&inst.name) {
                    let latency = started.elapsed();
                    telemetry::record_request(&cache_key, &inst.name, "shed", latency, 0);
                    return Ok(Response {
                        answer: Answer::Overloaded,
                        strategy: "shed",
                        latency,
                    });
                }
                let plan = self.plans.get_or_build(query, &self.config.plan);
                let par = (self.config.parallelism > 1)
                    .then(|| ParCtx::new(self.pool.scheduler(), self.config.par_threshold));
                let answer = self.adaptive.execute(&plan, &inst, &self.plans, par);
                if let Some(key) = answer_key {
                    self.answers.insert(key, answer.clone());
                }
                let latency = started.elapsed();
                self.adaptive.charge(&inst.name, latency.as_micros() as u64);
                telemetry::record_request(
                    &cache_key,
                    &inst.name,
                    plan.strategy.name(),
                    latency,
                    answer.cardinality(),
                );
                Ok(Response {
                    answer,
                    strategy: plan.strategy.name(),
                    latency,
                })
            }
        }
    }

    /// A point-in-time snapshot of the process-wide telemetry registry —
    /// counters, gauges, latency histograms, and the per-(program,
    /// instance) request table fed by the executor and the wire path. The
    /// `metrics` wire verb and `replay --metrics` render this as
    /// Prometheus-style text.
    pub fn telemetry_snapshot(&self) -> sirup_core::TelemetrySnapshot {
        telemetry::snapshot()
    }

    /// WAL `(epoch, log bytes)` on a durable server, `None` otherwise.
    pub fn wal_stats(&self) -> Option<(u64, u64)> {
        self.wal.as_ref().map(|w| {
            let w = sync::lock(w);
            (w.epoch(), w.log_len().unwrap_or(0))
        })
    }

    /// The full Prometheus text exposition served by the `metrics` wire
    /// verb: the process-wide registry
    /// ([`Server::telemetry_snapshot`]) followed by this server's own
    /// families — plan/answer cache hit/miss counters and, on a durable
    /// server, WAL epoch and log size gauges. The caches are per-server
    /// state (the registry is per-process), which is why they are appended
    /// here rather than counted globally.
    pub fn metrics_text(&self) -> String {
        let mut out = self.telemetry_snapshot().to_prometheus();
        let (ph, pm) = self.plans.stats();
        let (ah, am) = self.answers.stats();
        for (name, v) in [
            ("sirup_plan_cache_hits_total", ph),
            ("sirup_plan_cache_misses_total", pm),
            ("sirup_answer_cache_hits_total", ah),
            ("sirup_answer_cache_misses_total", am),
        ] {
            writeln!(out, "# TYPE {name} counter\n{name} {v}").unwrap();
        }
        if let Some((epoch, bytes)) = self.wal_stats() {
            writeln!(out, "# TYPE sirup_wal_epoch gauge\nsirup_wal_epoch {epoch}").unwrap();
            writeln!(
                out,
                "# TYPE sirup_wal_log_bytes gauge\nsirup_wal_log_bytes {bytes}"
            )
            .unwrap();
        }
        let routes = self.adaptive.routes();
        if !routes.is_empty() {
            let esc = |s: &str| {
                s.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            };
            writeln!(out, "# TYPE sirup_adaptive_route gauge").unwrap();
            for r in routes {
                writeln!(
                    out,
                    "sirup_adaptive_route{{program=\"{}\",instance=\"{}\",route=\"{}\",why=\"{}\"}} 1",
                    esc(&r.program),
                    esc(&r.instance),
                    r.route,
                    esc(&r.why)
                )
                .unwrap();
            }
        }
        out
    }

    /// The adaptive feedback controller (inert unless enabled in the
    /// config).
    pub fn adaptive(&self) -> &AdaptiveController {
        &self.adaptive
    }

    /// Feed an answer-cache hit into the adaptive read-run accounting. An
    /// answer-cache hit implies the program was evaluated under this
    /// instance version, so its plan is (almost always) still in the plan
    /// cache — `peek` avoids skewing the hit/miss statistics. Only
    /// semi-naive programs have a promotion decision to inform.
    fn note_cached_read(&self, cache_key: &str, instance: &str) {
        if !self.adaptive.enabled() {
            return;
        }
        if let Some(plan) = self.plans.peek(cache_key) {
            if matches!(plan.strategy, Strategy::SemiNaive { .. }) {
                self.adaptive.note_read(cache_key, instance);
            }
        }
    }

    /// Stats of one live instance.
    pub fn instance_stats(&self, name: &str) -> Option<InstanceStats> {
        let inst = self.catalog.get(name)?;
        Some(InstanceStats {
            name: inst.name.clone(),
            version: inst.version,
            seq: inst.seq,
            nodes: inst.data.node_count(),
            unary_atoms: inst.data.label_count(),
            binary_atoms: inst.data.edge_count(),
            cow: inst.cow,
            live_bytes: inst.data.live_bytes(),
            frozen_bytes: inst.frozen_bytes(),
            materializations: inst.materialization_stats(),
        })
    }

    /// Resolve every request into a [`Route`]: validate instances (whole
    /// batch fails on the first unknown name — no partial execution),
    /// resolve snapshots and plans, and — when `probe_cache` is set —
    /// probe the answer cache. Mutation tickets are *not* reserved here;
    /// [`Server::enqueue`] reserves them atomically with the queue append.
    fn resolve(&self, requests: &[Request], probe_cache: bool) -> Result<Vec<Route>, ServerError> {
        let mut instances = Vec::with_capacity(requests.len());
        for r in requests {
            instances.push(
                self.catalog
                    .get(&r.instance)
                    .ok_or_else(|| ServerError::UnknownInstance(r.instance.clone()))?,
            );
        }
        // One plan fetch per distinct program in the batch.
        let mut by_key: FxHashMap<String, Arc<crate::plan::Plan>> = FxHashMap::default();
        let routes = requests
            .iter()
            .zip(instances)
            .map(|(req, inst)| match &req.action {
                Action::Query(query) => {
                    let cache_key = query.cache_key();
                    let answer_key = (probe_cache && self.answers.enabled())
                        .then(|| format!("{cache_key}|{}#{}", inst.name, inst.version));
                    if let Some(key) = &answer_key {
                        if let Some(answer) = self.answers.get(key) {
                            self.note_cached_read(&cache_key, &inst.name);
                            return Route::Cached(answer);
                        }
                    }
                    // Admission control (inert unless a token bucket is
                    // configured): shed queries *before* they reach the
                    // scheduler queue. Mutations are never shed — they are
                    // durable writes the client was promised ordering for.
                    if !self.adaptive.admit(&inst.name) {
                        return Route::Shed;
                    }
                    let plan = by_key
                        .entry(cache_key)
                        .or_insert_with(|| self.plans.get_or_build(query, &self.config.plan))
                        .clone();
                    Route::Evaluate(
                        Work::Answer {
                            plan,
                            instance: inst,
                        },
                        answer_key,
                    )
                }
                Action::Mutate(ops) => Route::Evaluate(
                    Work::Mutate {
                        catalog: Arc::clone(&self.catalog),
                        instance: req.instance.clone(),
                        ops: Arc::new(ops.clone()),
                        ticket: 0, // reserved at enqueue time
                    },
                    None,
                ),
            })
            .collect();
        Ok(routes)
    }

    /// Append a job to the pool queue. For mutations, the ticket is
    /// reserved *here*, under a lock covering both the reservation and the
    /// queue append: workers redeem tickets strictly in order by blocking
    /// in `mutate_ticketed`, which is deadlock-free only if, per instance,
    /// tickets enter the FIFO queue in reservation order (the job holding
    /// the next-to-apply ticket is then always dequeued — and therefore
    /// finishable — before any job that waits on it). Reserving at
    /// resolve time instead would let an arrival-sorted open-loop replay
    /// or a racing second submitter enqueue tickets out of order and hang
    /// the pool.
    fn enqueue(&self, idx: usize, work: Work, reply: &std::sync::mpsc::Sender<Completion>) {
        let job = |work: Work| Job {
            idx,
            work,
            enqueued: Instant::now(),
            reply: reply.clone(),
        };
        match work {
            Work::Mutate {
                catalog,
                instance,
                ops,
                ..
            } => {
                let _order = sync::lock(&self.mutation_order);
                let ticket = self.catalog.reserve_ticket(&instance);
                if let Some(wal) = &self.wal {
                    sync::lock(wal)
                        .append(&WalRecord::Mutate {
                            name: instance.clone(),
                            seq: ticket + 1,
                            ops: ops.as_ref().clone(),
                        })
                        .expect("wal append (batch mutate)");
                    self.since_snapshot.fetch_add(1, Ordering::Relaxed);
                }
                self.pool.submit(job(Work::Mutate {
                    catalog,
                    instance,
                    ops,
                    ticket,
                }));
            }
            w => self.pool.submit(job(w)),
        }
    }

    /// Drain completions into the response slots, remembering cacheable
    /// answers.
    fn collect(
        &self,
        done: std::sync::mpsc::Receiver<Completion>,
        responses: &mut [Option<Response>],
        keys: &mut FxHashMap<usize, String>,
    ) {
        for c in done {
            if let Some(key) = keys.remove(&c.idx) {
                // Never cache a shed marker: `Overloaded` reflects this
                // instant's bucket, not the query's answer at this version.
                if c.answer != Answer::Overloaded {
                    self.answers.insert(key, c.answer.clone());
                }
            }
            responses[c.idx] = Some(Response {
                answer: c.answer,
                strategy: c.strategy,
                latency: c.latency,
            });
        }
    }

    /// Answer a batch. Requests are validated up front (no partial
    /// execution on error); responses come back in request order. Requests
    /// sharing a program share one plan fetch; queries already answered
    /// for the resolved instance version are served from the answer cache
    /// without touching the pool; mutations apply in request order per
    /// instance.
    pub fn submit(&self, requests: &[Request]) -> Result<Vec<Response>, ServerError> {
        let routes = self.resolve(requests, true)?;
        let mut responses: Vec<Option<Response>> = vec![None; requests.len()];
        let mut keys: FxHashMap<usize, String> = FxHashMap::default();
        let (reply, done) = channel::<Completion>();
        let submitted = Instant::now();
        for (idx, route) in routes.into_iter().enumerate() {
            match route {
                Route::Cached(answer) => {
                    responses[idx] = Some(Response {
                        answer,
                        strategy: "cached",
                        latency: submitted.elapsed(),
                    });
                }
                Route::Shed => {
                    responses[idx] = Some(Response {
                        answer: Answer::Overloaded,
                        strategy: "shed",
                        latency: submitted.elapsed(),
                    });
                }
                Route::Evaluate(work, key) => {
                    if let Some(key) = key {
                        keys.insert(idx, key);
                    }
                    self.enqueue(idx, work, &reply);
                }
            }
        }
        drop(reply);
        self.collect(done, &mut responses, &mut keys);
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every request completes"))
            .collect())
    }

    /// Load a spec's instances and replay its request stream.
    pub fn replay(
        &self,
        spec: &TrafficSpec,
        mode: ReplayMode,
    ) -> Result<ReplayReport, ServerError> {
        for (name, data) in &spec.instances {
            self.load_instance(name.clone(), data.clone());
        }
        let requests: Vec<Request> = spec
            .requests
            .iter()
            .map(Request::from_traffic)
            .collect::<Result<_, _>>()?;
        let started = Instant::now();
        let responses = match mode {
            ReplayMode::Closed => self.submit(&requests)?,
            ReplayMode::Open => self.submit_paced(&requests, spec)?,
        };
        let elapsed = started.elapsed();

        let mut per_kind: FxHashMap<&str, usize> = FxHashMap::default();
        for r in &spec.requests {
            *per_kind.entry(r.keyword()).or_default() += 1;
        }
        let mut per_strategy: FxHashMap<&str, usize> = FxHashMap::default();
        for r in &responses {
            *per_strategy.entry(r.strategy).or_default() += 1;
        }
        let sorted = |m: FxHashMap<&str, usize>| {
            let mut v: Vec<(String, usize)> =
                m.into_iter().map(|(k, n)| (k.to_owned(), n)).collect();
            v.sort_unstable();
            v
        };
        let mutations = responses
            .iter()
            .filter(|r| r.strategy == "mutation")
            .count();
        let mutation_ops_applied = responses
            .iter()
            .map(|r| match r.answer {
                Answer::Applied { applied, .. } => applied,
                _ => 0,
            })
            .sum();
        let latencies: Vec<Duration> = responses.iter().map(|r| r.latency).collect();
        Ok(ReplayReport {
            total: responses.len(),
            threads: self.threads(),
            elapsed,
            per_kind: sorted(per_kind),
            per_strategy: sorted(per_strategy),
            mutations,
            mutation_ops_applied,
            latency: LatencyStats::from_durations(&latencies),
            plan_cache: self.plans.stats(),
            answer_cache: self.answers.stats(),
            plans_resident: self.plans.len(),
            answers: responses.into_iter().map(|r| r.answer).collect(),
        })
    }

    /// Open-loop submission: requests enter the queue at (roughly) their
    /// virtual arrival offsets; a late stream never sleeps to catch up.
    /// Plans are resolved *before* the pacing clock starts, so cold plan
    /// builds cannot distort the arrival process being measured; mutation
    /// tickets are reserved at each job's enqueue, so same-instance
    /// mutations apply in **arrival order** (for specs with nondecreasing
    /// arrivals — every generated/rendered one — this equals stream
    /// order). The answer cache is deliberately not probed: open-loop runs
    /// measure evaluation latency under load.
    fn submit_paced(
        &self,
        requests: &[Request],
        spec: &TrafficSpec,
    ) -> Result<Vec<Response>, ServerError> {
        let mut routes: Vec<Option<Route>> = self
            .resolve(requests, false)?
            .into_iter()
            .map(Some)
            .collect();
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| spec.requests[i].arrival_us);
        let (reply, done) = channel::<Completion>();
        let mut responses: Vec<Option<Response>> = vec![None; requests.len()];
        let mut keys: FxHashMap<usize, String> = FxHashMap::default();
        let start = Instant::now();
        for &i in &order {
            let due = Duration::from_micros(spec.requests[i].arrival_us);
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            match routes[i].take().expect("each request submits once") {
                Route::Cached(_) => {
                    unreachable!("resolve(probe_cache = false) never produces cached routes")
                }
                Route::Shed => {
                    responses[i] = Some(Response {
                        answer: Answer::Overloaded,
                        strategy: "shed",
                        latency: start.elapsed(),
                    });
                }
                Route::Evaluate(work, key) => {
                    if let Some(key) = key {
                        keys.insert(i, key);
                    }
                    self.enqueue(i, work, &reply);
                }
            }
        }
        drop(reply);
        self.collect(done, &mut responses, &mut keys);
        Ok(responses
            .into_iter()
            .map(|r| r.expect("every request completes"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::parse::st;
    use sirup_core::{Node, Pred};

    fn tiny_server() -> Server {
        let s = Server::new(ServerConfig {
            threads: 2,
            shards: 2,
            plan_cache: 8,
            answer_cache: 16,
            ..ServerConfig::default()
        });
        s.load_instance("yes", st("F(u), R(u,v), T(v)"));
        s.load_instance("no", st("F(u), R(v,u), T(v)"));
        s
    }

    fn pi_req(instance: &str) -> Request {
        Request::query(Query::PiGoal(OneCq::parse("F(x), R(x,y), T(y)")), instance)
    }

    #[test]
    fn submit_answers_in_request_order() {
        let s = tiny_server();
        let reqs = vec![pi_req("yes"), pi_req("no"), pi_req("yes")];
        let resp = s.submit(&reqs).unwrap();
        assert_eq!(resp.len(), 3);
        assert_eq!(resp[0].answer, Answer::Bool(true));
        assert_eq!(resp[1].answer, Answer::Bool(false));
        assert_eq!(resp[2].answer, Answer::Bool(true));
        // One program in the batch ⇒ one plan build, shared.
        assert_eq!(s.plan_cache().stats().1, 1);
    }

    #[test]
    fn answer_cache_serves_repeats_and_mutation_invalidates() {
        let s = tiny_server();
        let r = pi_req("yes");
        let first = s.submit(std::slice::from_ref(&r)).unwrap();
        assert_ne!(first[0].strategy, "cached");
        let second = s.submit(std::slice::from_ref(&r)).unwrap();
        assert_eq!(second[0].strategy, "cached");
        assert_eq!(second[0].answer, first[0].answer);
        // A mutation bumps the version: the cached answer cannot be served
        // and the fresh evaluation sees the new data.
        let m = Request::mutation(vec![FactOp::RemoveLabel(Pred::T, Node(1))], "yes");
        let out = s.submit(std::slice::from_ref(&m)).unwrap();
        let Answer::Applied { applied, seq } = out[0].answer else {
            panic!("mutation got {:?}", out[0].answer);
        };
        assert_eq!((applied, out[0].strategy), (1, "mutation"));
        assert_eq!(seq, 1, "first mutation of the instance");
        let third = s.submit(std::slice::from_ref(&r)).unwrap();
        assert_ne!(third[0].strategy, "cached");
        assert_eq!(third[0].answer, Answer::Bool(false));
    }

    #[test]
    fn mutations_in_one_batch_apply_in_order() {
        let s = tiny_server();
        // Same-instance mutations race across workers but tickets force
        // request order: remove, add, remove ⇒ label absent.
        let ops = [
            FactOp::RemoveLabel(Pred::T, Node(1)),
            FactOp::AddLabel(Pred::T, Node(1)),
            FactOp::RemoveLabel(Pred::T, Node(1)),
        ];
        let reqs: Vec<Request> = ops
            .iter()
            .map(|&op| Request::mutation(vec![op], "yes"))
            .collect();
        let resp = s.submit(&reqs).unwrap();
        for r in &resp {
            let Answer::Applied { applied, .. } = r.answer else {
                panic!()
            };
            assert_eq!(applied, 1, "each alternating op is effective in order");
        }
        assert!(!s
            .catalog()
            .get("yes")
            .unwrap()
            .data
            .has_label(Node(1), Pred::T));
    }

    #[test]
    fn unknown_instance_fails_whole_batch() {
        let s = tiny_server();
        let err = s.submit(&[pi_req("yes"), pi_req("missing")]).unwrap_err();
        assert_eq!(err, ServerError::UnknownInstance("missing".to_owned()));
        // The failed batch reserved no tickets: a direct mutation proceeds.
        assert!(s
            .mutate_instance("yes", &[FactOp::AddLabel(Pred::A, Node(0))])
            .is_ok());
        assert!(s.mutate_instance("missing", &[]).is_err());
    }

    #[test]
    fn replay_reports_both_modes() {
        use sirup_workloads::traffic::{mixed_traffic, TrafficParams};
        let spec = mixed_traffic(
            TrafficParams {
                instances: 2,
                requests: 40,
                mean_gap_us: 30,
                ..Default::default()
            },
            11,
        );
        let s = Server::with_defaults();
        let closed = s.replay(&spec, ReplayMode::Closed).unwrap();
        assert_eq!(closed.total, 40);
        assert_eq!(closed.answers.len(), 40);
        assert!(closed.throughput() > 0.0);
        assert!(!closed.per_kind.is_empty());
        assert!(!closed.per_strategy.is_empty());
        assert_eq!(closed.mutations, 0);
        let open = s.replay(&spec, ReplayMode::Open).unwrap();
        assert_eq!(open.total, 40);
        // Identical answers regardless of pacing and cache temperature.
        assert_eq!(closed.answers, open.answers);
        let text = closed.summary();
        for needle in ["req/s", "p50", "p99", "plan cache", "mutations"] {
            assert!(text.contains(needle), "summary missing {needle}: {text}");
        }
    }

    #[test]
    fn replay_with_mutations_reports_throughput() {
        use sirup_workloads::traffic::{mixed_traffic, TrafficParams};
        let spec = mixed_traffic(
            TrafficParams {
                instances: 2,
                requests: 60,
                mean_gap_us: 20,
                mutation_ratio: 0.3,
                hot_weight: 0.4,
                ..Default::default()
            },
            23,
        );
        let s = Server::with_defaults();
        let report = s.replay(&spec, ReplayMode::Closed).unwrap();
        assert!(report.mutations > 0);
        assert!(report.mutation_ops_applied > 0);
        assert!(report.mutation_throughput() > 0.0);
        assert!(report
            .per_kind
            .iter()
            .any(|(k, n)| k == "mutate" && *n == report.mutations));
        assert!(report
            .per_strategy
            .iter()
            .any(|(k, n)| k == "mutation" && *n == report.mutations));
        let text = report.summary();
        assert!(text.contains("op(s) applied"), "{text}");
    }

    #[test]
    fn adaptive_hysteresis_promotes_demotes_and_never_lies() {
        use crate::adaptive::AdaptiveConfig;
        // Single worker + no answer cache: every read evaluates, so the
        // read runs the controller feeds on are exactly the submits below.
        let adaptive = Server::new(ServerConfig {
            threads: 1,
            shards: 2,
            plan_cache: 8,
            answer_cache: 0,
            adaptive: AdaptiveConfig {
                enabled: true,
                promote_after_reads: 2,
                demote_after_writes: 2,
                ..AdaptiveConfig::default()
            },
            ..ServerConfig::default()
        });
        // The oracle is the same server with the static router — every
        // answer must match it, whichever route served.
        let oracle = Server::new(ServerConfig {
            threads: 1,
            shards: 2,
            plan_cache: 8,
            answer_cache: 0,
            ..ServerConfig::default()
        });
        let data = st("F(u), R(v,u), R(v,w), T(w)");
        adaptive.load_instance("d", data.clone());
        oracle.load_instance("d", data);
        // q4 is unbounded: the semi-naive strategy, where routing matters.
        let read = || {
            Request::query(
                Query::PiGoal(OneCq::parse("F(x), R(y,x), R(y,z), T(z)")),
                "d",
            )
        };
        let write = |i: u32| Request::mutation(vec![FactOp::AddLabel(Pred::A, Node(10 + i))], "d");
        let mats = || {
            adaptive
                .instance_stats("d")
                .expect("instance d is loaded")
                .materializations
                .len()
        };
        let check = |req: Request| {
            let a = adaptive.submit(std::slice::from_ref(&req)).unwrap();
            let b = oracle.submit(&[req]).unwrap();
            assert_eq!(a[0].answer, b[0].answer, "adaptive answer diverged");
        };
        let promotions_before = telemetry::snapshot().counter("sirup_adaptive_promotions_total");

        // Write-heavy phase: reads interleaved with writes never clear the
        // promotion threshold — no materialisation may attach.
        for i in 0..3 {
            check(read());
            check(write(i));
            assert_eq!(mats(), 0, "write-heavy phase must not materialise");
        }

        // Read-heavy phase: the second uninterrupted read promotes and
        // attaches the maintained materialisation.
        check(read());
        assert_eq!(mats(), 0, "one read is below the promotion threshold");
        check(read());
        assert_eq!(mats(), 1, "the promoting read must attach");
        assert!(
            telemetry::snapshot().counter("sirup_adaptive_promotions_total") > promotions_before,
            "promotion must be observable via its counter"
        );
        let routes = adaptive.adaptive().routes();
        assert!(
            routes
                .iter()
                .any(|r| r.instance == "d" && r.route == "materialised"),
            "{routes:?}"
        );
        check(read()); // stays promoted
        assert_eq!(mats(), 1);

        // Second write-heavy phase: two consecutive writes demote and
        // detach.
        check(write(100));
        assert_eq!(mats(), 1, "one write is below the demotion threshold");
        check(write(101));
        assert_eq!(mats(), 0, "the demoting write must detach");
        assert!(
            adaptive
                .adaptive()
                .routes()
                .iter()
                .any(|r| r.instance == "d" && r.route == "scratch"),
            "demotion must be visible in the route surface"
        );
        // And reads start a fresh run from scratch.
        check(read());
        assert_eq!(mats(), 0);
    }

    #[test]
    fn instance_stats_expose_live_state() {
        let s = tiny_server();
        // A semi-naive query attaches a materialisation.
        let q4 = Request::query(
            Query::PiGoal(OneCq::parse("F(x), R(y,x), R(y,z), T(z)")),
            "yes",
        );
        s.submit(&[q4]).unwrap();
        let stats = s.instance_stats("yes").unwrap();
        assert_eq!(stats.name, "yes");
        assert!(stats.version > 0);
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.unary_atoms + stats.binary_atoms, 3);
        assert_eq!(stats.materializations.len(), 1);
        assert!(s.instance_stats("missing").is_none());
    }
}
