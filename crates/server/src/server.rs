//! The [`Server`]: catalog + plan cache + worker pool, and workload replay.
//!
//! `submit` is the batch entry point: it validates every request against the
//! catalog, fetches (or builds) one plan per distinct program in the batch,
//! fans the jobs out to the worker pool, and reassembles responses in
//! request order. `replay` drives a whole [`TrafficSpec`] either closed-loop
//! (one maximal batch — a throughput run) or open-loop (submission paced by
//! the spec's virtual arrival offsets — a latency-under-load run) and
//! aggregates a [`ReplayReport`].

use crate::catalog::Catalog;
use crate::executor::{Completion, Job, Pool};
use crate::metrics::LatencyStats;
use crate::plan::{Answer, PlanCache, PlanOptions, Query};
use sirup_core::fx::FxHashMap;
use sirup_core::{OneCq, Structure};
use sirup_workloads::traffic::{QueryKind, TrafficRequest, TrafficSpec};
use std::fmt::Write as _;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads in the pool (at least 1).
    pub threads: usize,
    /// Catalog shards (at least 1).
    pub shards: usize,
    /// Plan-cache capacity (at least 1).
    pub plan_cache: usize,
    /// Plan construction knobs.
    pub plan: PlanOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            shards: 8,
            plan_cache: 64,
            plan: PlanOptions::default(),
        }
    }
}

/// One request: a query against a named catalog instance.
#[derive(Debug, Clone)]
pub struct Request {
    /// The query.
    pub query: Query,
    /// Target instance name.
    pub instance: String,
}

impl Request {
    /// Convert a workload request (re-validating 1-CQ kinds).
    pub fn from_traffic(r: &TrafficRequest) -> Result<Request, ServerError> {
        let query = match r.kind {
            QueryKind::PiGoal => Query::PiGoal(
                OneCq::new(r.cq.clone()).map_err(|e| ServerError::BadQuery(e.to_string()))?,
            ),
            QueryKind::SigmaAnswers => Query::SigmaAnswers(
                OneCq::new(r.cq.clone()).map_err(|e| ServerError::BadQuery(e.to_string()))?,
            ),
            QueryKind::Delta => Query::Delta {
                cq: r.cq.clone(),
                disjoint: false,
            },
            QueryKind::DeltaPlus => Query::Delta {
                cq: r.cq.clone(),
                disjoint: true,
            },
        };
        Ok(Request {
            query,
            instance: r.instance.clone(),
        })
    }
}

/// One response, positionally matching its request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The certain answer.
    pub answer: Answer,
    /// Which strategy served it (`rewriting`, `semi-naive`, `dpll`).
    pub strategy: &'static str,
    /// Queue wait + evaluation time.
    pub latency: Duration,
}

/// Errors surfaced by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// A request targeted an instance the catalog does not hold.
    UnknownInstance(String),
    /// A `pi`/`sigma` request whose CQ is not a 1-CQ.
    BadQuery(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownInstance(n) => write!(f, "unknown instance {n:?}"),
            ServerError::BadQuery(m) => write!(f, "bad query: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// How [`Server::replay`] paces submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Submit the whole stream as one batch and drain at full speed.
    Closed,
    /// Pace submission by the spec's virtual arrival offsets.
    Open,
}

/// Aggregate results of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Requests served.
    pub total: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Request counts per query kind keyword.
    pub per_kind: Vec<(String, usize)>,
    /// Request counts per serving strategy.
    pub per_strategy: Vec<(String, usize)>,
    /// Latency order statistics.
    pub latency: LatencyStats,
    /// Plan-cache `(hits, misses)` over the whole server lifetime.
    pub plan_cache: (u64, u64),
    /// Distinct plans resident after the run.
    pub plans_resident: usize,
    /// Answers in request order (for differential checking).
    pub answers: Vec<Answer>,
}

impl ReplayReport {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.total as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "replayed {} requests on {} worker thread(s) in {:.3} ms ({:.0} req/s)",
            self.total,
            self.threads,
            self.elapsed.as_secs_f64() * 1e3,
            self.throughput()
        )
        .unwrap();
        let fmt_counts = |pairs: &[(String, usize)]| {
            pairs
                .iter()
                .map(|(k, n)| format!("{k} {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        writeln!(out, "kinds     : {}", fmt_counts(&self.per_kind)).unwrap();
        writeln!(out, "strategies: {}", fmt_counts(&self.per_strategy)).unwrap();
        writeln!(
            out,
            "latency   : p50 {}µs  p95 {}µs  p99 {}µs  max {}µs  mean {}µs",
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.p99_us,
            self.latency.max_us,
            self.latency.mean_us
        )
        .unwrap();
        let (hits, misses) = self.plan_cache;
        writeln!(
            out,
            "plan cache: {} resident, {hits} hit(s) / {misses} miss(es)",
            self.plans_resident
        )
        .unwrap();
        out
    }
}

/// The concurrent certain-answer query service.
pub struct Server {
    config: ServerConfig,
    catalog: Catalog,
    plans: PlanCache,
    pool: Pool,
}

impl Server {
    /// Build a server (spawns the worker pool immediately).
    pub fn new(config: ServerConfig) -> Server {
        Server {
            catalog: Catalog::new(config.shards),
            plans: PlanCache::new(config.plan_cache),
            pool: Pool::new(config.threads),
            config,
        }
    }

    /// A server with [`ServerConfig::default`].
    pub fn with_defaults() -> Server {
        Server::new(ServerConfig::default())
    }

    /// The instance catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Load (or replace) a named instance.
    pub fn load_instance(&self, name: impl Into<String>, data: Structure) -> bool {
        self.catalog.insert(name, data)
    }

    /// Resolve every request's instance (whole batch fails on the first
    /// unknown name — no partial execution).
    fn resolve_instances(
        &self,
        requests: &[Request],
    ) -> Result<Vec<Arc<crate::catalog::IndexedInstance>>, ServerError> {
        requests
            .iter()
            .map(|r| {
                self.catalog
                    .get(&r.instance)
                    .ok_or_else(|| ServerError::UnknownInstance(r.instance.clone()))
            })
            .collect()
    }

    /// Fetch one plan per distinct program in the batch (so a batch pays
    /// each program's planning cost at most once), mapped per request.
    fn resolve_plans(&self, requests: &[Request]) -> Vec<Arc<crate::plan::Plan>> {
        let mut by_key: FxHashMap<String, Arc<crate::plan::Plan>> = FxHashMap::default();
        requests
            .iter()
            .map(|req| {
                by_key
                    .entry(req.query.cache_key())
                    .or_insert_with(|| self.plans.get_or_build(&req.query, &self.config.plan))
                    .clone()
            })
            .collect()
    }

    /// Drain `n` completions into responses ordered by request index.
    fn collect_responses(done: std::sync::mpsc::Receiver<Completion>, n: usize) -> Vec<Response> {
        let mut responses: Vec<Option<Response>> = vec![None; n];
        for c in done {
            responses[c.idx] = Some(Response {
                answer: c.answer,
                strategy: c.strategy,
                latency: c.latency,
            });
        }
        responses
            .into_iter()
            .map(|r| r.expect("every job completes"))
            .collect()
    }

    /// Answer a batch. Requests are validated up front (no partial
    /// execution on error); responses come back in request order. Requests
    /// sharing a program share one plan fetch, so a batch pays each
    /// distinct program's planning cost once.
    pub fn submit(&self, requests: &[Request]) -> Result<Vec<Response>, ServerError> {
        let instances = self.resolve_instances(requests)?;
        let plans = self.resolve_plans(requests);
        let (reply, done) = channel::<Completion>();
        for (idx, (plan, inst)) in plans.into_iter().zip(instances).enumerate() {
            self.pool.submit(Job {
                idx,
                plan,
                instance: inst,
                enqueued: Instant::now(),
                reply: reply.clone(),
            });
        }
        drop(reply);
        Ok(Self::collect_responses(done, requests.len()))
    }

    /// Load a spec's instances and replay its request stream.
    pub fn replay(
        &self,
        spec: &TrafficSpec,
        mode: ReplayMode,
    ) -> Result<ReplayReport, ServerError> {
        for (name, data) in &spec.instances {
            self.load_instance(name.clone(), data.clone());
        }
        let requests: Vec<Request> = spec
            .requests
            .iter()
            .map(Request::from_traffic)
            .collect::<Result<_, _>>()?;
        let started = Instant::now();
        let responses = match mode {
            ReplayMode::Closed => self.submit(&requests)?,
            ReplayMode::Open => self.submit_paced(&requests, spec)?,
        };
        let elapsed = started.elapsed();

        let mut per_kind: FxHashMap<&str, usize> = FxHashMap::default();
        for r in &spec.requests {
            *per_kind.entry(r.kind.keyword()).or_default() += 1;
        }
        let mut per_strategy: FxHashMap<&str, usize> = FxHashMap::default();
        for r in &responses {
            *per_strategy.entry(r.strategy).or_default() += 1;
        }
        let sorted = |m: FxHashMap<&str, usize>| {
            let mut v: Vec<(String, usize)> =
                m.into_iter().map(|(k, n)| (k.to_owned(), n)).collect();
            v.sort_unstable();
            v
        };
        let latencies: Vec<Duration> = responses.iter().map(|r| r.latency).collect();
        Ok(ReplayReport {
            total: responses.len(),
            threads: self.threads(),
            elapsed,
            per_kind: sorted(per_kind),
            per_strategy: sorted(per_strategy),
            latency: LatencyStats::from_durations(&latencies),
            plan_cache: self.plans.stats(),
            plans_resident: self.plans.len(),
            answers: responses.into_iter().map(|r| r.answer).collect(),
        })
    }

    /// Open-loop submission: requests enter the queue at (roughly) their
    /// virtual arrival offsets; a late stream never sleeps to catch up.
    /// Plans are resolved *before* the pacing clock starts, so cold plan
    /// builds cannot distort the arrival process being measured.
    fn submit_paced(
        &self,
        requests: &[Request],
        spec: &TrafficSpec,
    ) -> Result<Vec<Response>, ServerError> {
        let instances = self.resolve_instances(requests)?;
        let plans = self.resolve_plans(requests);
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| spec.requests[i].arrival_us);
        let (reply, done) = channel::<Completion>();
        let start = Instant::now();
        for &i in &order {
            let due = Duration::from_micros(spec.requests[i].arrival_us);
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            self.pool.submit(Job {
                idx: i,
                plan: plans[i].clone(),
                instance: instances[i].clone(),
                enqueued: Instant::now(),
                reply: reply.clone(),
            });
        }
        drop(reply);
        Ok(Self::collect_responses(done, requests.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::parse::st;

    fn tiny_server() -> Server {
        let s = Server::new(ServerConfig {
            threads: 2,
            shards: 2,
            plan_cache: 8,
            plan: PlanOptions::default(),
        });
        s.load_instance("yes", st("F(u), R(u,v), T(v)"));
        s.load_instance("no", st("F(u), R(v,u), T(v)"));
        s
    }

    fn pi_req(instance: &str) -> Request {
        Request {
            query: Query::PiGoal(OneCq::parse("F(x), R(x,y), T(y)")),
            instance: instance.to_owned(),
        }
    }

    #[test]
    fn submit_answers_in_request_order() {
        let s = tiny_server();
        let reqs = vec![pi_req("yes"), pi_req("no"), pi_req("yes")];
        let resp = s.submit(&reqs).unwrap();
        assert_eq!(resp.len(), 3);
        assert_eq!(resp[0].answer, Answer::Bool(true));
        assert_eq!(resp[1].answer, Answer::Bool(false));
        assert_eq!(resp[2].answer, Answer::Bool(true));
        // One program in the batch ⇒ one plan build, shared.
        assert_eq!(s.plan_cache().stats().1, 1);
    }

    #[test]
    fn unknown_instance_fails_whole_batch() {
        let s = tiny_server();
        let err = s.submit(&[pi_req("yes"), pi_req("missing")]).unwrap_err();
        assert_eq!(err, ServerError::UnknownInstance("missing".to_owned()));
    }

    #[test]
    fn replay_reports_both_modes() {
        use sirup_workloads::traffic::{mixed_traffic, TrafficParams};
        let spec = mixed_traffic(
            TrafficParams {
                instances: 2,
                requests: 40,
                mean_gap_us: 30,
                ..Default::default()
            },
            11,
        );
        let s = Server::with_defaults();
        let closed = s.replay(&spec, ReplayMode::Closed).unwrap();
        assert_eq!(closed.total, 40);
        assert_eq!(closed.answers.len(), 40);
        assert!(closed.throughput() > 0.0);
        assert!(!closed.per_kind.is_empty());
        assert!(!closed.per_strategy.is_empty());
        let open = s.replay(&spec, ReplayMode::Open).unwrap();
        assert_eq!(open.total, 40);
        // Identical answers regardless of pacing and cache temperature.
        assert_eq!(closed.answers, open.answers);
        let text = closed.summary();
        for needle in ["req/s", "p50", "p99", "plan cache"] {
            assert!(text.contains(needle), "summary missing {needle}: {text}");
        }
    }
}
