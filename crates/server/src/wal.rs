//! Write-ahead durability for the catalog.
//!
//! A [`Wal`] owns a data directory with two files:
//!
//! * `wal.log` — an append-only sequence of checksummed frames
//!   (`sirup_core::frame`): one **header** frame (magic + epoch) followed by
//!   [`WalRecord`]s. A mutation is appended **and fsync'd before it is
//!   applied** to the catalog, so an acknowledged mutation is always
//!   recoverable.
//! * `snapshot.bin` — the folded catalog as of some prefix of the log:
//!   a header frame (magic + epoch + instance count) followed by one frame
//!   per instance (name, per-instance mutation `seq`, node count, the
//!   structure as `Add*` ops). Written to a temp file, fsync'd, and
//!   atomically renamed into place.
//!
//! ## Epochs and the compaction crash windows
//!
//! Compaction writes a fresh snapshot at epoch `E+1`, renames it in, then
//! truncates `wal.log` and writes a new header at epoch `E+1`. A crash can
//! land in either window:
//!
//! * after the temp snapshot is written but before the rename — the temp
//!   file is simply ignored on recovery (only `snapshot.bin` is read);
//! * after the rename but before the log truncate — the old log (epoch `E`)
//!   now *precedes* the snapshot (epoch `E+1`). Recovery detects this by
//!   comparing epochs: a log header older than the snapshot means every
//!   logged record is already folded into the snapshot, so the log is
//!   discarded and re-initialised.
//!
//! Replaying a log on top of a snapshot is only sound when the epochs
//! match; [`Wal::open`] enforces exactly that.
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a torn final frame. Recovery scans the log's
//! checksum-valid prefix ([`frame::scan`]), folds those records, and
//! truncates the file to the clean prefix before appending resumes — the
//! torn bytes can never corrupt later records. The same applies to a
//! record that framed correctly but decodes to garbage: that is not a torn
//! tail but real corruption, and `open` refuses the directory rather than
//! silently dropping acknowledged writes.

use sirup_core::delta::{decode_ops, encode_ops};
use sirup_core::frame;
use sirup_core::telemetry::{self, Counter, Family};
use sirup_core::{FactOp, Structure};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8] = b"sirup-wal v1";
const SNAP_MAGIC: &[u8] = b"sirup-snap v1";

/// One durable event in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An instance was loaded (or replaced): `nodes` then the structure's
    /// atoms as `Add*` ops. Resets the instance's mutation sequence to 0.
    Load {
        /// Instance name.
        name: String,
        /// Node count (ops alone cannot express trailing isolated nodes).
        nodes: u32,
        /// The structure as insert ops.
        ops: Vec<FactOp>,
    },
    /// A mutation batch applied as the instance's `seq`-th mutation.
    Mutate {
        /// Instance name.
        name: String,
        /// Per-instance mutation sequence number (1-based).
        seq: u64,
        /// The fact batch.
        ops: Vec<FactOp>,
    },
    /// An instance was dropped.
    Remove {
        /// Instance name.
        name: String,
    },
}

impl WalRecord {
    /// Binary form: `u8` kind tag, name as `u16 LE` length + UTF-8, then
    /// the kind's payload.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let (tag, name) = match self {
            WalRecord::Load { name, .. } => (0u8, name),
            WalRecord::Mutate { name, .. } => (1, name),
            WalRecord::Remove { name } => (2, name),
        };
        out.push(tag);
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        match self {
            WalRecord::Load { nodes, ops, .. } => {
                out.extend_from_slice(&nodes.to_le_bytes());
                out.extend_from_slice(&encode_ops(ops));
            }
            WalRecord::Mutate { seq, ops, .. } => {
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&encode_ops(ops));
            }
            WalRecord::Remove { .. } => {}
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<WalRecord, String> {
        let take = |at: usize, n: usize| -> Result<&[u8], String> {
            buf.get(at..at + n)
                .ok_or_else(|| format!("wal record truncated at byte {at}"))
        };
        let tag = take(0, 1)?[0];
        let name_len = u16::from_le_bytes(take(1, 2)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(take(3, name_len)?)
            .map_err(|_| "wal record name is not UTF-8".to_owned())?
            .to_owned();
        let at = 3 + name_len;
        match tag {
            0 => {
                let nodes = u32::from_le_bytes(take(at, 4)?.try_into().unwrap());
                let (ops, _) = decode_ops(&buf[at + 4..])?;
                Ok(WalRecord::Load { name, nodes, ops })
            }
            1 => {
                let seq = u64::from_le_bytes(take(at, 8)?.try_into().unwrap());
                let (ops, _) = decode_ops(&buf[at + 8..])?;
                Ok(WalRecord::Mutate { name, seq, ops })
            }
            2 => Ok(WalRecord::Remove { name }),
            t => Err(format!("unknown wal record tag {t}")),
        }
    }
}

/// One instance as reconstructed by [`Wal::open`].
#[derive(Debug, Clone)]
pub struct RecoveredInstance {
    /// Instance name.
    pub name: String,
    /// The folded structure.
    pub data: Structure,
    /// Mutation sequence the instance had reached (0 = freshly loaded).
    pub seq: u64,
}

/// The write-ahead log plus snapshot of one data directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    log: File,
    epoch: u64,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parse a header frame: `magic ++ u64 LE epoch ++ rest`; returns
/// `(epoch, rest)`.
fn parse_header<'a>(payload: &'a [u8], magic: &[u8], what: &str) -> io::Result<(u64, &'a [u8])> {
    if payload.len() < magic.len() + 8 || &payload[..magic.len()] != magic {
        return Err(bad(format!(
            "{what} header is not a {}",
            String::from_utf8_lossy(magic)
        )));
    }
    let epoch = u64::from_le_bytes(payload[magic.len()..magic.len() + 8].try_into().unwrap());
    Ok((epoch, &payload[magic.len() + 8..]))
}

/// Serialise one instance for the snapshot file.
fn encode_instance(name: &str, seq: u64, data: &Structure) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(data.node_count() as u32).to_le_bytes());
    out.extend_from_slice(&encode_ops(&data.to_ops()));
    out
}

fn decode_instance(buf: &[u8]) -> Result<RecoveredInstance, String> {
    let take = |at: usize, n: usize| -> Result<&[u8], String> {
        buf.get(at..at + n)
            .ok_or_else(|| format!("snapshot instance truncated at byte {at}"))
    };
    let name_len = u16::from_le_bytes(take(0, 2)?.try_into().unwrap()) as usize;
    let name = std::str::from_utf8(take(2, name_len)?)
        .map_err(|_| "snapshot instance name is not UTF-8".to_owned())?
        .to_owned();
    let at = 2 + name_len;
    let seq = u64::from_le_bytes(take(at, 8)?.try_into().unwrap());
    let nodes = u32::from_le_bytes(take(at + 8, 4)?.try_into().unwrap());
    let (ops, _) = decode_ops(&buf[at + 12..])?;
    let mut data = Structure::with_nodes(nodes as usize);
    data.apply_all(&ops);
    Ok(RecoveredInstance { name, data, seq })
}

/// Rebuild a structure from a `Load` record.
fn structure_of(nodes: u32, ops: &[FactOp]) -> Structure {
    let mut data = Structure::with_nodes(nodes as usize);
    data.apply_all(ops);
    data
}

impl Wal {
    /// Open (creating if needed) the WAL in `dir` and recover the catalog
    /// state it describes: the snapshot (if any) with the log's clean
    /// prefix folded on top. Torn log tails are truncated away; a log whose
    /// epoch predates the snapshot (a crash between snapshot rename and log
    /// truncate) is discarded as already-folded.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(Wal, Vec<RecoveredInstance>)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        // 1. The snapshot, if present, seeds the fold.
        let mut instances: Vec<RecoveredInstance> = Vec::new();
        let mut snap_epoch = 0u64;
        let snap_path = dir.join("snapshot.bin");
        if snap_path.exists() {
            let bytes = fs::read(&snap_path)?;
            let (frames, clean) = frame::scan(&bytes);
            if clean != bytes.len() || frames.is_empty() {
                return Err(bad("snapshot.bin is corrupt (torn or bad checksum)"));
            }
            let (epoch, rest) = parse_header(frames[0], SNAP_MAGIC, "snapshot")?;
            snap_epoch = epoch;
            let count = u32::from_le_bytes(
                rest.get(0..4)
                    .ok_or_else(|| bad("snapshot header is missing its count"))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            if frames.len() != count + 1 {
                return Err(bad(format!(
                    "snapshot.bin holds {} instance frame(s), header promises {count}",
                    frames.len() - 1
                )));
            }
            for f in &frames[1..] {
                instances.push(decode_instance(f).map_err(bad)?);
            }
        }

        // 2. The log's checksum-valid prefix, unless it predates the
        //    snapshot.
        let log_path = dir.join("wal.log");
        let mut log_bytes = Vec::new();
        if log_path.exists() {
            File::open(&log_path)?.read_to_end(&mut log_bytes)?;
        }
        let (frames, clean) = frame::scan(&log_bytes);
        let mut epoch = snap_epoch;
        let mut stale = frames.is_empty();
        if let Some(header) = frames.first() {
            let (log_epoch, _) = parse_header(header, WAL_MAGIC, "wal")?;
            if log_epoch < snap_epoch {
                stale = true; // already folded into the snapshot
            } else {
                epoch = log_epoch;
                for f in &frames[1..] {
                    let record = WalRecord::decode(f).map_err(bad)?;
                    Wal::fold(&mut instances, record);
                }
            }
        }

        // 3. Re-initialise a stale/fresh log, or truncate a torn tail so
        //    appends land right after the last complete record.
        let mut log = OpenOptions::new()
            .create(true)
            .truncate(false) // recovery decides below how much tail to keep
            .read(true)
            .write(true)
            .open(&log_path)?;
        if stale {
            log.set_len(0)?;
            let mut header = Vec::from(WAL_MAGIC);
            header.extend_from_slice(&epoch.to_le_bytes());
            let mut framed = Vec::new();
            frame::encode_frame(&mut framed, &header);
            log.write_all(&framed)?;
            log.sync_data()?;
        } else if clean as u64 != log.metadata()?.len() {
            log.set_len(clean as u64)?;
            log.sync_data()?;
        }
        use std::io::Seek as _;
        log.seek(io::SeekFrom::End(0))?;

        instances.sort_by(|a, b| a.name.cmp(&b.name));
        Ok((Wal { dir, log, epoch }, instances))
    }

    fn fold(instances: &mut Vec<RecoveredInstance>, record: WalRecord) {
        match record {
            WalRecord::Load { name, nodes, ops } => {
                let data = structure_of(nodes, &ops);
                match instances.iter_mut().find(|i| i.name == name) {
                    Some(i) => {
                        i.data = data;
                        i.seq = 0;
                    }
                    None => instances.push(RecoveredInstance { name, data, seq: 0 }),
                }
            }
            WalRecord::Mutate { name, seq, ops } => {
                if let Some(i) = instances.iter_mut().find(|i| i.name == name) {
                    i.data.apply_all(&ops);
                    i.seq = seq;
                }
            }
            WalRecord::Remove { name } => instances.retain(|i| i.name != name),
        }
    }

    /// Durably append one record: framed write + `fdatasync` before
    /// returning. Callers apply the change to the catalog only after this
    /// returns, so an acknowledged effect is always on disk.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        telemetry::counter_add(Counter::WalAppends, 1);
        {
            let _t = telemetry::timed(Family::WalAppend, "wal_append");
            frame::write_frame(&mut self.log, &record.encode())?;
        }
        let _t = telemetry::timed(Family::WalFsync, "wal_fsync");
        self.log.sync_data()
    }

    /// Bytes currently in the log file (header included) — the compaction
    /// trigger reads this.
    pub fn log_len(&self) -> io::Result<u64> {
        Ok(self.log.metadata()?.len())
    }

    /// The current snapshot/log epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compact: write `instances` as the new snapshot at epoch `E+1`
    /// (temp file, fsync, atomic rename, directory fsync), then truncate
    /// the log and start it fresh at the same epoch. The caller must have
    /// quiesced the catalog — every appended record must be reflected in
    /// `instances` — and must block appends for the duration.
    pub fn compact(&mut self, instances: &[(String, u64, &Structure)]) -> io::Result<()> {
        telemetry::counter_add(Counter::WalCompactions, 1);
        let _t = telemetry::timed(Family::WalCompact, "wal_compact");
        let epoch = self.epoch + 1;
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut header = Vec::from(SNAP_MAGIC);
            header.extend_from_slice(&epoch.to_le_bytes());
            header.extend_from_slice(&(instances.len() as u32).to_le_bytes());
            frame::write_frame(&mut f, &header)?;
            for (name, seq, data) in instances {
                frame::write_frame(&mut f, &encode_instance(name, *seq, data))?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join("snapshot.bin"))?;
        // Make the rename itself durable before truncating the log: once
        // the log is empty, recovery must be guaranteed to see the new
        // snapshot.
        File::open(&self.dir)?.sync_all()?;

        self.log.set_len(0)?;
        use std::io::Seek as _;
        self.log.seek(io::SeekFrom::Start(0))?;
        let mut header = Vec::from(WAL_MAGIC);
        header.extend_from_slice(&epoch.to_le_bytes());
        frame::write_frame(&mut self.log, &header)?;
        self.log.sync_data()?;
        self.epoch = epoch;
        Ok(())
    }

    /// The directory this WAL persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::parse::st;
    use sirup_core::{Node, Pred};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sirup-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn load_record(name: &str, data: &Structure) -> WalRecord {
        WalRecord::Load {
            name: name.to_owned(),
            nodes: data.node_count() as u32,
            ops: data.to_ops(),
        }
    }

    #[test]
    fn record_encoding_round_trips() {
        let records = [
            load_record("alpha", &st("F(a), R(a,b), T(b)")),
            WalRecord::Mutate {
                name: "alpha".into(),
                seq: 3,
                ops: vec![
                    FactOp::AddLabel(Pred::A, Node(1)),
                    FactOp::RemoveEdge(Pred::R, Node(0), Node(1)),
                ],
            },
            WalRecord::Remove {
                name: "gone".into(),
            },
        ];
        for r in &records {
            assert_eq!(&WalRecord::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn reopen_recovers_loads_and_mutations() {
        let dir = tmpdir("reopen");
        let data = st("F(a), R(a,b), T(b)");
        {
            let (mut wal, recovered) = Wal::open(&dir).unwrap();
            assert!(recovered.is_empty());
            wal.append(&load_record("d", &data)).unwrap();
            wal.append(&WalRecord::Mutate {
                name: "d".into(),
                seq: 1,
                ops: vec![FactOp::AddLabel(Pred::A, Node(0))],
            })
            .unwrap();
            wal.append(&WalRecord::Mutate {
                name: "d".into(),
                seq: 2,
                ops: vec![FactOp::RemoveLabel(Pred::T, Node(1))],
            })
            .unwrap();
            wal.append(&load_record("e", &st("T(u)"))).unwrap();
            wal.append(&WalRecord::Remove { name: "e".into() }).unwrap();
        }
        let (_, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        let d = &recovered[0];
        assert_eq!((d.name.as_str(), d.seq), ("d", 2));
        let mut oracle = data.clone();
        oracle.apply_all(&[
            FactOp::AddLabel(Pred::A, Node(0)),
            FactOp::RemoveLabel(Pred::T, Node(1)),
        ]);
        assert_eq!(d.data.to_string(), oracle.to_string());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bytes_are_identical_across_mutation_histories() {
        // Two WALs reach the same logical instance along different paths:
        // one loads the final state directly, the other loads a precursor
        // and mutates its way there (including retractions, so page and
        // chunk layouts inside the paged storage differ along the way).
        // `snapshot.bin` serialises through the canonical `to_ops` order,
        // so compaction must produce byte-identical files — recovery and
        // crash-check stay stable across the storage representation.
        let final_state = {
            let mut s = st("F(a), R(a,b), T(b), S(b,c), A(c)");
            s.apply(FactOp::AddLabel(Pred::A, Node(0)));
            s
        };
        let dir_direct = tmpdir("snap-direct");
        let dir_mutated = tmpdir("snap-mutated");
        {
            let (mut wal, _) = Wal::open(&dir_direct).unwrap();
            wal.append(&load_record("d", &final_state)).unwrap();
            wal.compact(&[("d".to_owned(), 2, &final_state)]).unwrap();
        }
        {
            let (mut wal, _) = Wal::open(&dir_mutated).unwrap();
            let mut data = st("F(a), R(a,b), T(b), S(b,c), A(c), S(c,a)");
            wal.append(&load_record("d", &data)).unwrap();
            for (seq, ops) in [
                (1u64, vec![FactOp::RemoveEdge(Pred::S, Node(2), Node(0))]),
                (2u64, vec![FactOp::AddLabel(Pred::A, Node(0))]),
            ] {
                data.apply_all(&ops);
                wal.append(&WalRecord::Mutate {
                    name: "d".into(),
                    seq,
                    ops,
                })
                .unwrap();
            }
            assert_eq!(data, final_state, "histories converge logically");
            wal.compact(&[("d".to_owned(), 2, &data)]).unwrap();
        }
        let direct = fs::read(dir_direct.join("snapshot.bin")).unwrap();
        let mutated = fs::read(dir_mutated.join("snapshot.bin")).unwrap();
        assert_eq!(direct, mutated, "snapshot bytes diverged across histories");
        // And recovery from those bytes reproduces the instance exactly.
        let (_, recovered) = Wal::open(&dir_mutated).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].data, final_state);
        assert_eq!(recovered[0].seq, 2);
        fs::remove_dir_all(&dir_direct).unwrap();
        fs::remove_dir_all(&dir_mutated).unwrap();
    }

    #[test]
    fn torn_final_record_recovers_at_every_cut() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&load_record("d", &st("T(a)"))).unwrap();
            wal.append(&WalRecord::Mutate {
                name: "d".into(),
                seq: 1,
                ops: vec![FactOp::AddLabel(Pred::A, Node(0))],
            })
            .unwrap();
        }
        let full = fs::read(dir.join("wal.log")).unwrap();
        // Find where the final record's frame starts: scan all frames and
        // drop the last one's length.
        let (frames, _) = frame::scan(&full);
        let last_len = 8 + frames.last().unwrap().len();
        let boundary = full.len() - last_len;
        for cut in boundary..full.len() {
            fs::write(dir.join("wal.log"), &full[..cut]).unwrap();
            let (mut wal, recovered) =
                Wal::open(&dir).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            // The torn mutation is gone; the load survives.
            assert_eq!(recovered.len(), 1, "cut at {cut}");
            assert_eq!(recovered[0].seq, 0, "cut at {cut}");
            assert!(
                !recovered[0].data.has_label(Node(0), Pred::A),
                "cut at {cut}"
            );
            // The file was truncated to the clean prefix: appending after
            // recovery yields a log whose fold includes the new record.
            wal.append(&WalRecord::Mutate {
                name: "d".into(),
                seq: 1,
                ops: vec![FactOp::AddLabel(Pred::F, Node(0))],
            })
            .unwrap();
            drop(wal);
            let (_, again) = Wal::open(&dir).unwrap();
            assert!(again[0].data.has_label(Node(0), Pred::F), "cut at {cut}");
            assert_eq!(again[0].seq, 1, "cut at {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_the_fold_and_bumps_the_epoch() {
        let dir = tmpdir("compact");
        let before;
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            assert_eq!(wal.epoch(), 0);
            wal.append(&load_record("d", &st("F(a), R(a,b), T(b)")))
                .unwrap();
            wal.append(&WalRecord::Mutate {
                name: "d".into(),
                seq: 1,
                ops: vec![FactOp::AddLabel(Pred::A, Node(1))],
            })
            .unwrap();
            let (_, folded) = Wal::open(&dir).unwrap();
            before = folded[0].data.to_string();
            // Compact at the fold, then keep appending.
            let snap: Vec<(String, u64, &Structure)> = vec![("d".into(), 1, &folded[0].data)];
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.compact(&snap).unwrap();
            assert_eq!(wal.epoch(), 1);
            assert!(wal.log_len().unwrap() < 100, "log was compacted");
            wal.append(&WalRecord::Mutate {
                name: "d".into(),
                seq: 2,
                ops: vec![FactOp::RemoveLabel(Pred::T, Node(1))],
            })
            .unwrap();
        }
        let (wal, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(wal.epoch(), 1);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].seq, 2);
        // The recovered fold equals the full-history oracle: the load, the
        // pre-compaction mutation (checked against `before`), and the
        // post-compaction one.
        let mut oracle = st("F(a), R(a,b), T(b)");
        oracle.apply(FactOp::AddLabel(Pred::A, Node(1)));
        assert_eq!(before, oracle.to_string());
        oracle.apply(FactOp::RemoveLabel(Pred::T, Node(1)));
        assert_eq!(recovered[0].data.to_string(), oracle.to_string());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_log_after_snapshot_rename_is_discarded() {
        // Simulate the crash window between snapshot rename and log
        // truncate: the snapshot is at epoch 1 but the log still holds the
        // epoch-0 records it folded.
        let dir = tmpdir("stale");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&load_record("d", &st("T(a)"))).unwrap();
            wal.append(&WalRecord::Mutate {
                name: "d".into(),
                seq: 1,
                ops: vec![FactOp::AddLabel(Pred::A, Node(0))],
            })
            .unwrap();
        }
        let old_log = fs::read(dir.join("wal.log")).unwrap();
        {
            let (_, folded) = Wal::open(&dir).unwrap();
            let snap: Vec<(String, u64, &Structure)> = vec![("d".into(), 1, &folded[0].data)];
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.compact(&snap).unwrap();
        }
        // Crash simulation: the pre-compaction log reappears.
        fs::write(dir.join("wal.log"), &old_log).unwrap();
        let (wal, recovered) = Wal::open(&dir).unwrap();
        // The stale records were NOT applied a second time on top of the
        // snapshot: seq stays 1, the A label appears once.
        assert_eq!(wal.epoch(), 1);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].seq, 1);
        assert!(recovered[0].data.has_label(Node(0), Pred::A));
        fs::remove_dir_all(&dir).unwrap();
    }
}
