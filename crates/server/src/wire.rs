//! The TCP front-end: length-prefixed frames over `std::net`, served by
//! the shared work-stealing scheduler.
//!
//! ## Protocol
//!
//! Every frame (see `sirup_core::frame`: `u32 LE` length + `crc32` + bytes)
//! carries one UTF-8 text payload. Client → server payloads are requests in
//! the `.sirupload` vocabulary:
//!
//! ```text
//! ping
//! list
//! load <name> <nodes>\n<op>\n<op>...      (ops are +P(n<i>[,n<j>]) inserts)
//! query pi|sigma|delta|delta+ <inst> = <atoms>
//! mutate <inst> = <op>, <op>, ...
//! stats <inst>
//! dump <inst>
//! remove <inst>
//! snapshot
//! tail <inst>
//! metrics
//! trace <min_us>
//! ```
//!
//! Server → client payloads start with `ok`, `answer`, `error`, or (pushed
//! on tailing connections) `op`:
//!
//! ```text
//! ok pong | ok instances a,b | ok loaded d nodes 5 atoms 7 | ok stats ...
//! ok metrics\n<prometheus text> | ok trace 2\nspan id=.. parent=.. ...
//! answer bool true | answer nodes n0,n3 | answer applied 2 seq 7
//! op <inst> <seq> = +T(n4),-R(n0,n1)
//! error <message>
//! ```
//!
//! `metrics` dumps the process-wide telemetry registry in Prometheus text
//! exposition; `trace <min_us>` returns every recent **root** span at
//! least `min_us` long together with its full child tree, one rendered
//! span per line (`sirupctl trace` reassembles the tree from the
//! `id`/`parent` fields). The daemon switches span tracing on at startup,
//! so the rings are populated exactly while a daemon serves.
//!
//! Node names on the wire are **canonical**: `n<i>` maps to node index `i`
//! verbatim (the `load` verb carries an explicit node count so trailing
//! isolated nodes survive), which keeps client, server, WAL, and oracle in
//! the same coordinate system.
//!
//! ## Scheduling model
//!
//! The [`Daemon`] owns one plain accept thread; each accepted connection
//! becomes a **detached job on the shared scheduler** — the same workers
//! that run query evaluation and mutation maintenance. A connection job
//! handles at most [`WireConfig::max_frames_per_turn`] requests, then
//! re-spawns itself on the injector, so a chatty client cannot monopolise
//! a worker. Idle connections block at most `read_timeout` in a 1-byte
//! `peek` before yielding the worker the same way.
//!
//! Requests are evaluated **inline** via [`Server::answer_one`] — never
//! round-tripped through the batch executor: a connection job blocking on
//! a reply channel while the work it waits for sits *behind it* in the
//! injector would deadlock. The scheduler's owner-never-pops-injector
//! invariant keeps the FIFO discipline intact for the re-spawned jobs
//! themselves. Each request runs under `catch_unwind`: a panicking handler
//! produces an `error internal ...` frame and the connection (and every
//! lock it touched, via the `sirup_core::sync` poison-recovering helpers)
//! keeps serving.

use crate::plan::{Answer, Query};
use crate::server::{Action, Request, Server};
use sirup_core::delta::parse_op;
use sirup_core::fx::FxHashMap;
use sirup_core::parse::parse_structure;
use sirup_core::sync;
use sirup_core::telemetry::{self, SpanRecord};
use sirup_core::{FactOp, Node, OneCq, Structure};
use sirup_workloads::traffic::{split_ops, QueryKind};
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sirup_core::frame;

/// Front-end knobs.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Listen address, e.g. `127.0.0.1:7407` (`:0` picks a free port).
    pub listen: String,
    /// How long an idle connection's turn blocks in `peek` before the job
    /// yields its worker back to the scheduler.
    pub read_timeout: Duration,
    /// Most requests one connection turn serves before re-spawning.
    pub max_frames_per_turn: usize,
    /// Snapshot after this many logged mutations (0 disables; only
    /// meaningful on a durable server). Enforced by the daemon's
    /// housekeeping thread, never inline on a worker.
    pub snapshot_every: u64,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            listen: "127.0.0.1:0".to_owned(),
            read_timeout: Duration::from_millis(20),
            max_frames_per_turn: 64,
            snapshot_every: 0,
        }
    }
}

/// One mutation event pushed to tailing connections.
#[derive(Debug, Clone)]
pub struct TailEvent {
    /// Name of the mutated instance.
    pub instance: String,
    /// Per-instance sequence number the mutation landed at.
    pub seq: u64,
    /// The applied ops, rendered in `.sirupload` text form.
    pub ops: String,
}

/// Registered `tail` subscriptions: `(instance, sender)` pairs; senders
/// whose connection died are pruned at the next broadcast.
#[derive(Debug, Default)]
struct TailRegistry {
    subs: Mutex<Vec<(String, Sender<TailEvent>)>>,
}

impl TailRegistry {
    fn subscribe(&self, instance: &str, tx: Sender<TailEvent>) {
        sync::lock(&self.subs).push((instance.to_owned(), tx));
    }

    fn broadcast(&self, event: &TailEvent) {
        sync::lock(&self.subs)
            .retain(|(inst, tx)| inst != &event.instance || tx.send(event.clone()).is_ok());
    }
}

/// The TCP daemon: accept thread + housekeeping thread + per-connection
/// scheduler jobs. Dropping it (or calling [`Daemon::shutdown`]) stops
/// accepting, lets every connection job exit at its next turn, and joins
/// the threads.
pub struct Daemon {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    housekeeping: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Bind `config.listen` and start serving `server`.
    pub fn start(server: Arc<Server>, config: WireConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let tails = Arc::new(TailRegistry::default());
        server.set_snapshot_every(config.snapshot_every);
        // A daemon is the long-running, inspectable deployment shape:
        // switch span tracing on so `trace <min_us>` has rings to read.
        // (Embedded/bench servers leave it off — spans cost nothing there.)
        telemetry::set_tracing(true);

        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("sirup-accept".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_read_timeout(Some(config.read_timeout));
                        let _ = stream.set_nodelay(true);
                        let conn = Conn {
                            stream,
                            server: Arc::clone(&server),
                            tails: Arc::clone(&tails),
                            tail_rx: None,
                            stop: Arc::clone(&stop),
                            max_frames: config.max_frames_per_turn.max(1),
                        };
                        conn.respawn();
                    }
                })?
        };

        let housekeeping = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sirup-housekeeping".to_owned())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(25));
                        if server.snapshot_due() {
                            if let Err(e) = server.snapshot_now() {
                                eprintln!("sirup: snapshot failed: {e}");
                            }
                        }
                    }
                })?
        };

        Ok(Daemon {
            addr,
            stop,
            accept: Some(accept),
            housekeeping: Some(housekeeping),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the daemon threads. Connection jobs notice
    /// the stop flag at their next turn and drop their sockets.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.housekeeping.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One live connection, owned by whichever scheduler job is currently
/// running its turn.
struct Conn {
    stream: TcpStream,
    server: Arc<Server>,
    tails: Arc<TailRegistry>,
    /// Present once this connection issued `tail`: pushed events drain at
    /// the top of every turn.
    tail_rx: Option<Receiver<TailEvent>>,
    stop: Arc<AtomicBool>,
    max_frames: usize,
}

impl Conn {
    /// Hand this connection to the scheduler for its next turn. The stop
    /// guard matters: after scheduler shutdown `spawn` runs the task
    /// inline, so an unguarded self-respawn would recurse forever.
    fn respawn(self) {
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        let sched = Arc::clone(self.server.scheduler());
        sched.spawn(move || self.turn());
    }

    /// One scheduling turn: drain tail pushes, then serve up to
    /// `max_frames` requests if bytes are waiting, then yield.
    fn turn(mut self) {
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        if !self.drain_tail() {
            return; // peer gone
        }
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            Ok(0) => {} // clean disconnect: drop the connection
            Ok(_) => {
                for _ in 0..self.max_frames {
                    match frame::read_frame(&mut self.stream) {
                        Ok(Some(payload)) => {
                            if !self.serve(&payload) {
                                return;
                            }
                        }
                        Ok(None) => return, // clean disconnect at a boundary
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            // No further request waiting this turn.
                            break;
                        }
                        Err(_) => return, // torn/corrupt stream: drop it
                    }
                    // Only keep reading if another request is already here;
                    // otherwise yield without burning the timeout again.
                    match self.stream.peek(&mut probe) {
                        Ok(n) if n > 0 => continue,
                        _ => break,
                    }
                }
                self.respawn();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                self.respawn(); // idle: yield the worker
            }
            Err(_) => {} // connection error: drop it
        }
    }

    /// Drain pending tail events to the peer. Returns `false` when the
    /// peer is unreachable (connection is dropped by the caller).
    fn drain_tail(&mut self) -> bool {
        loop {
            let ev = match &self.tail_rx {
                Some(rx) => match rx.try_recv() {
                    Ok(ev) => ev,
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return true,
                },
                None => return true,
            };
            let line = format!("op {} {} = {}", ev.instance, ev.seq, ev.ops);
            if self.send(&line).is_err() {
                return false;
            }
        }
    }

    fn send(&mut self, payload: &str) -> io::Result<()> {
        frame::write_frame(&mut self.stream, payload.as_bytes())?;
        self.stream.flush()
    }

    /// Serve one request payload. Returns `false` when the connection
    /// should be dropped (peer unreachable).
    fn serve(&mut self, payload: &[u8]) -> bool {
        let text = String::from_utf8_lossy(payload).into_owned();
        // A panicking handler must not take the daemon down — reply
        // `error internal` and keep the connection. Shared locks the
        // panic poisoned recover via `sirup_core::sync`.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(&self.server, &self.tails, &text)
        }));
        let reply = match outcome {
            Ok(Ok(Handled::Reply(reply))) => reply,
            Ok(Ok(Handled::Tail { instance, seq })) => {
                let (tx, rx) = channel();
                self.tails.subscribe(&instance, tx);
                self.tail_rx = Some(rx);
                format!("ok tail {instance} seq {seq}")
            }
            Ok(Err(msg)) => format!("error {msg}"),
            Err(_) => "error internal: request handler panicked".to_owned(),
        };
        self.send(&reply).is_ok()
    }
}

/// What a handled request produced.
enum Handled {
    /// An immediate reply payload.
    Reply(String),
    /// The connection subscribed to an instance's mutation stream.
    Tail {
        /// Subscribed instance.
        instance: String,
        /// Its mutation sequence at subscription time.
        seq: u64,
    },
}

/// Canonical wire node names: `n<i>` is node index `i`, nothing else.
fn strict_node(name: &str) -> Result<Node, String> {
    name.strip_prefix('n')
        .and_then(|d| d.parse::<u32>().ok())
        .map(Node)
        .ok_or_else(|| format!("node name {name:?} must be canonical n<i>"))
}

/// Parse a comma-separated op list in canonical node names.
fn parse_wire_ops(body: &str) -> Result<Vec<FactOp>, String> {
    let mut ops = Vec::new();
    for part in split_ops(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut bad = None;
        let op = parse_op(part, |name| match strict_node(name) {
            Ok(v) => v,
            Err(e) => {
                bad.get_or_insert(e);
                Node(0)
            }
        })?;
        if let Some(e) = bad {
            return Err(e);
        }
        ops.push(op);
    }
    Ok(ops)
}

/// Render an answer as a reply payload.
fn render_answer(answer: &Answer) -> String {
    match answer {
        Answer::Bool(b) => format!("answer bool {b}"),
        Answer::Nodes(nodes) => {
            let list: Vec<String> = nodes.iter().map(|n| format!("n{}", n.0)).collect();
            format!("answer nodes {}", list.join(","))
        }
        Answer::Applied { applied, seq } => format!("answer applied {applied} seq {seq}"),
        Answer::Overloaded => "error overloaded: request shed by admission control".to_owned(),
    }
}

/// Render the `trace <min_us>` reply: `ok trace <n>` for `n` qualifying
/// root spans (duration ≥ `min_us`), then every span of each root's tree —
/// root first, descendants in depth-first order — one
/// [`SpanRecord::render`] line each.
fn render_trace(spans: &[SpanRecord], min_us: u64) -> String {
    let mut children: FxHashMap<u64, Vec<&SpanRecord>> = FxHashMap::default();
    for s in spans {
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(s);
        }
    }
    let roots: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.parent == 0 && s.dur_us >= min_us)
        .collect();
    let mut out = format!("ok trace {}", roots.len());
    for root in roots {
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            out.push('\n');
            out.push_str(&s.render());
            if let Some(kids) = children.get(&s.id) {
                // Reverse push so depth-first output keeps recording order.
                stack.extend(kids.iter().rev());
            }
        }
    }
    out
}

/// Dispatch one request line (the connection-independent part — pure
/// request in, reply or tail subscription out).
fn handle_request(server: &Server, tails: &TailRegistry, text: &str) -> Result<Handled, String> {
    let (head, rest) = match text.split_once('\n') {
        Some((h, r)) => (h.trim(), Some(r)),
        None => (text.trim(), None),
    };
    let mut words = head.split_whitespace();
    let verb = words.next().unwrap_or("");
    match verb {
        "ping" => Ok(Handled::Reply("ok pong".to_owned())),
        "list" => {
            let names = server.catalog().names();
            Ok(Handled::Reply(format!("ok instances {}", names.join(","))))
        }
        "load" => {
            let name = words.next().ok_or("load needs an instance name")?;
            let nodes: usize = words
                .next()
                .and_then(|w| w.parse().ok())
                .ok_or("load needs a node count")?;
            let mut ops = Vec::new();
            for line in rest.unwrap_or("").lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                ops.extend(parse_wire_ops(line)?);
            }
            if let Some(bad) = ops.iter().find(|op| !op.is_insert()) {
                return Err(format!("load bodies are insert-only, got {bad}"));
            }
            let mut data = Structure::with_nodes(nodes);
            let atoms = data.apply_all(&ops);
            if data.node_count() != nodes {
                return Err(format!(
                    "load {name}: ops mention node n{}, above the declared count {nodes}",
                    data.node_count() - 1
                ));
            }
            server.load_instance(name.to_owned(), data);
            Ok(Handled::Reply(format!(
                "ok loaded {name} nodes {nodes} atoms {atoms}"
            )))
        }
        "query" => {
            let kind = words
                .next()
                .ok_or("query needs a kind (pi|sigma|delta|delta+)")?;
            let kind = QueryKind::from_keyword(kind)
                .ok_or_else(|| format!("unknown query kind {kind:?}"))?;
            let inst = words.next().ok_or("query needs an instance name")?;
            let body = head
                .split_once('=')
                .map(|(_, b)| b.trim())
                .ok_or("query needs `= <atoms>`")?;
            let (cq, _) = parse_structure(body).map_err(|e| format!("bad query atoms: {e}"))?;
            let query = match kind {
                QueryKind::PiGoal => {
                    Query::PiGoal(OneCq::new(cq).map_err(|e| format!("bad query: {e}"))?)
                }
                QueryKind::SigmaAnswers => {
                    Query::SigmaAnswers(OneCq::new(cq).map_err(|e| format!("bad query: {e}"))?)
                }
                QueryKind::Delta => Query::Delta {
                    cq,
                    disjoint: false,
                },
                QueryKind::DeltaPlus => Query::Delta { cq, disjoint: true },
            };
            let resp = server
                .answer_one(&Request::query(query, inst))
                .map_err(|e| e.to_string())?;
            Ok(Handled::Reply(render_answer(&resp.answer)))
        }
        "mutate" => {
            let inst = words.next().ok_or("mutate needs an instance name")?;
            let body = head
                .split_once('=')
                .map(|(_, b)| b.trim())
                .ok_or("mutate needs `= <ops>`")?;
            let ops = parse_wire_ops(body)?;
            let resp = server
                .answer_one(&Request {
                    action: Action::Mutate(ops.clone()),
                    instance: inst.to_owned(),
                })
                .map_err(|e| e.to_string())?;
            if let Answer::Applied { seq, .. } = resp.answer {
                let rendered: Vec<String> = ops.iter().map(|op| op.to_string()).collect();
                tails.broadcast(&TailEvent {
                    instance: inst.to_owned(),
                    seq,
                    ops: rendered.join(","),
                });
            }
            Ok(Handled::Reply(render_answer(&resp.answer)))
        }
        "stats" => {
            let inst = words.next().ok_or("stats needs an instance name")?;
            let s = server
                .instance_stats(inst)
                .ok_or_else(|| format!("unknown instance {inst:?}"))?;
            Ok(Handled::Reply(format!(
                "ok stats {} seq {} nodes {} unary {} binary {} mats {} version {} \
                 pages {} shared {} retained {} live {} frozen {}",
                s.name,
                s.seq,
                s.nodes,
                s.unary_atoms,
                s.binary_atoms,
                s.materializations.len(),
                s.version,
                s.cow.pages,
                s.cow.shared_pages,
                s.cow.retained_bytes,
                s.live_bytes,
                s.frozen_bytes,
            )))
        }
        "dump" => {
            let inst = words.next().ok_or("dump needs an instance name")?;
            let inst = server
                .catalog()
                .get(inst)
                .ok_or_else(|| format!("unknown instance {inst:?}"))?;
            // The exact instance content in canonical names — the
            // crash-recovery check diffs this against its folded-ops
            // oracle.
            Ok(Handled::Reply(format!(
                "ok dump {} nodes {} seq {}\n{}",
                inst.name,
                inst.data.node_count(),
                inst.seq,
                inst.data
            )))
        }
        "remove" => {
            let inst = words.next().ok_or("remove needs an instance name")?;
            let existed = server.remove_instance(inst);
            Ok(Handled::Reply(format!("ok removed {existed}")))
        }
        "snapshot" => {
            server
                .snapshot_now()
                .map_err(|e| format!("snapshot failed: {e}"))?;
            Ok(Handled::Reply("ok snapshot".to_owned()))
        }
        "tail" => {
            let inst = words.next().ok_or("tail needs an instance name")?;
            let seq = server
                .instance_stats(inst)
                .ok_or_else(|| format!("unknown instance {inst:?}"))?
                .seq;
            Ok(Handled::Tail {
                instance: inst.to_owned(),
                seq,
            })
        }
        "metrics" => Ok(Handled::Reply(format!(
            "ok metrics\n{}",
            server.metrics_text()
        ))),
        "trace" => {
            let min_us: u64 = match words.next() {
                Some(w) => w
                    .parse()
                    .map_err(|_| format!("trace threshold {w:?} is not a µs count"))?,
                None => 0,
            };
            Ok(Handled::Reply(render_trace(
                &telemetry::recent_spans(),
                min_us,
            )))
        }
        // Deliberate crash hook for the panic-hardening tests: proves a
        // panicking handler yields `error internal`, poisons nothing
        // permanently, and leaves the daemon serving.
        "__test_panic" => panic!("wire test panic injection"),
        "" => Err("empty request".to_owned()),
        other => Err(format!("unknown verb {other:?}")),
    }
}
