//! Differential tests: the batched, multi-threaded server must agree
//! bit-for-bit with the engine's **sequential** evaluation paths (the
//! oracle the parallel execution stack is pinned against) — cold plan
//! cache, warm plan cache, on every strategy path (rewriting-served,
//! semi-naive fixpoint, DPLL for disjunctive sirups), and with
//! intra-request parallelism enabled.

use sirup_core::program::{pi_q, sigma_q, DSirup};
use sirup_core::{OneCq, Structure};
use sirup_engine::disjunctive::certain_answer_dsirup;
use sirup_engine::eval::{certain_answer_goal, certain_answers_unary};
use sirup_server::{
    Answer, PlanOptions, Query, ReplayMode, Request, Server, ServerConfig, Strategy,
};
use sirup_workloads::random::{random_ditree_cq, random_instance, DitreeCqParams};
use sirup_workloads::traffic::{mixed_traffic, QueryKind, TrafficParams};
use sirup_workloads::{d1, d2, paper};

fn four_thread_server() -> Server {
    Server::new(ServerConfig {
        threads: 4,
        shards: 4,
        plan_cache: 64, // all_queries() builds ~42 distinct plans; no evictions wanted here
        answer_cache: 0, // strategy-path asserts want every submit evaluated
        ..ServerConfig::default()
    })
}

/// Direct, sequential reference answer (the differential oracle).
fn engine_answer(query: &Query, data: &Structure) -> Answer {
    match query {
        Query::PiGoal(q) => Answer::Bool(certain_answer_goal(&pi_q(q), data)),
        Query::SigmaAnswers(q) => Answer::Nodes(certain_answers_unary(&sigma_q(q), data)),
        Query::Delta { cq, disjoint } => {
            let d = DSirup {
                cq: cq.clone(),
                disjoint: *disjoint,
            };
            Answer::Bool(certain_answer_dsirup(&d, data))
        }
    }
}

fn test_instances() -> Vec<(String, Structure)> {
    let mut out = vec![("d1".to_owned(), d1()), ("d2".to_owned(), d2())];
    for (i, seed) in [3u64, 17, 42, 99].iter().enumerate() {
        out.push((
            format!("rand{i}"),
            random_instance(16, 26, 0.45, 0.25, *seed),
        ));
    }
    // An inconsistent instance (FT-twin) to exercise the Δ⁺ short-circuit.
    out.push((
        "twin".to_owned(),
        sirup_core::parse::st("F(u), T(u), R(u,v), A(v)"),
    ));
    out
}

fn one_cq_pool() -> Vec<OneCq> {
    let mut pool = vec![
        paper::q2_cq(),
        paper::q3_cq(),
        paper::q4_cq(),
        paper::q5(),
        paper::q7(),
        paper::q8(),
    ];
    for seed in 0..12u64 {
        if let Some(q) = random_ditree_cq(DitreeCqParams::default(), seed) {
            pool.push(q);
            if pool.len() >= 10 {
                break;
            }
        }
    }
    pool
}

fn all_queries() -> Vec<Query> {
    let mut queries = Vec::new();
    for q in one_cq_pool() {
        queries.push(Query::PiGoal(q.clone()));
        queries.push(Query::SigmaAnswers(q.clone()));
        queries.push(Query::Delta {
            cq: q.structure().clone(),
            disjoint: false,
        });
        queries.push(Query::Delta {
            cq: q.structure().clone(),
            disjoint: true,
        });
    }
    // q1 is not a 1-CQ (two solitary Fs): disjunctive kinds only.
    queries.push(Query::Delta {
        cq: paper::q1(),
        disjoint: false,
    });
    queries.push(Query::Delta {
        cq: paper::q1(),
        disjoint: true,
    });
    queries
}

#[test]
fn batched_answers_match_engine_cold_and_warm() {
    let server = four_thread_server();
    let instances = test_instances();
    for (name, data) in &instances {
        server.load_instance(name.clone(), data.clone());
    }
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for query in all_queries() {
        for (name, data) in &instances {
            expected.push(engine_answer(&query, data));
            requests.push(Request::query(query.clone(), name.clone()));
        }
    }
    // Cold cache: every plan is built during this batch.
    let cold: Vec<Answer> = server
        .submit(&requests)
        .unwrap()
        .into_iter()
        .map(|r| r.answer)
        .collect();
    assert_eq!(cold, expected, "cold-cache batched ≠ direct engine");
    let (_, misses_after_cold) = server.plan_cache().stats();
    assert!(misses_after_cold > 0);
    // Warm cache: identical batch again, all plans served from cache.
    let warm: Vec<Answer> = server
        .submit(&requests)
        .unwrap()
        .into_iter()
        .map(|r| r.answer)
        .collect();
    assert_eq!(warm, expected, "warm-cache batched ≠ direct engine");
    let (hits, misses_after_warm) = server.plan_cache().stats();
    assert_eq!(
        misses_after_warm, misses_after_cold,
        "warm batch must not rebuild plans"
    );
    assert!(hits > 0);
}

#[test]
fn rewriting_served_path_matches_engine() {
    // q5 and q7 are bounded at depth 1 (verified elsewhere in the
    // workspace): their Π and Σ plans must be rewriting-served, and the
    // served answers must still match the fixpoint engine exactly.
    let server = four_thread_server();
    let instances = test_instances();
    for (name, data) in &instances {
        server.load_instance(name.clone(), data.clone());
    }
    for q in [paper::q5(), paper::q7()] {
        for query in [Query::PiGoal(q.clone()), Query::SigmaAnswers(q.clone())] {
            let plan = server
                .plan_cache()
                .get_or_build(&query, &PlanOptions::default());
            assert!(
                matches!(plan.strategy, Strategy::Rewriting { .. }),
                "{} plan for a bounded CQ must be rewriting-served, got {}",
                query.kind_name(),
                plan.strategy.name()
            );
            let requests: Vec<Request> = instances
                .iter()
                .map(|(name, _)| Request::query(query.clone(), name.clone()))
                .collect();
            let responses = server.submit(&requests).unwrap();
            for ((name, data), resp) in instances.iter().zip(responses) {
                assert_eq!(resp.strategy, "rewriting");
                assert_eq!(
                    resp.answer,
                    engine_answer(&query, data),
                    "rewriting-served {} answer differs on {name}",
                    query.kind_name()
                );
            }
        }
    }
}

#[test]
fn unbounded_queries_stay_on_the_fixpoint_path() {
    // q4 is unbounded: its plan must not claim a rewriting, and the served
    // (semi-naive, index-seeded) answers must match the plain engine.
    let server = four_thread_server();
    let instances = test_instances();
    for (name, data) in &instances {
        server.load_instance(name.clone(), data.clone());
    }
    for query in [
        Query::PiGoal(paper::q4_cq()),
        Query::SigmaAnswers(paper::q4_cq()),
    ] {
        let requests: Vec<Request> = instances
            .iter()
            .map(|(name, _)| Request::query(query.clone(), name.clone()))
            .collect();
        for ((name, data), resp) in instances.iter().zip(server.submit(&requests).unwrap()) {
            assert_eq!(resp.strategy, "semi-naive");
            assert_eq!(
                resp.answer,
                engine_answer(&query, data),
                "semi-naive answer differs on {name}"
            );
        }
    }
}

#[test]
fn cached_compiled_plans_serve_warm_path_like_fresh_builds() {
    // The cache stores *compiled* plans (hom-search plans, compiled rule
    // bodies, compiled UCQ disjuncts). The warm path must (a) hand back the
    // very same compiled artifact (no re-planning), and (b) answer exactly
    // like a freshly built plan and the direct engine, on every strategy
    // path.
    use sirup_server::{IndexedInstance, Plan, PlanCache};
    let cache = PlanCache::new(16);
    let opts = PlanOptions::default();
    let indexed: Vec<IndexedInstance> = test_instances()
        .into_iter()
        .map(|(name, data)| IndexedInstance::new(name, data))
        .collect();
    let queries = [
        Query::PiGoal(paper::q5()),    // bounded → rewriting strategy
        Query::PiGoal(paper::q4_cq()), // unbounded → semi-naive
        Query::SigmaAnswers(paper::q4_cq()),
        Query::Delta {
            cq: paper::q2(),
            disjoint: false,
        }, // dpll
        Query::Delta {
            cq: paper::q2(),
            disjoint: true,
        },
    ];
    for query in queries {
        let cold = cache.get_or_build(&query, &opts);
        let warm = cache.get_or_build(&query, &opts);
        assert!(
            std::sync::Arc::ptr_eq(&cold, &warm),
            "warm fetch must reuse the compiled plan ({})",
            query.kind_name()
        );
        let fresh = Plan::build(query.clone(), &opts);
        for inst in &indexed {
            let served = warm.answer(inst);
            assert_eq!(
                served,
                fresh.answer(inst),
                "cached plan ≠ fresh build on {} ({})",
                inst.name,
                query.kind_name()
            );
            assert_eq!(
                served,
                engine_answer(&query, &inst.data),
                "cached plan ≠ engine on {} ({})",
                inst.name,
                query.kind_name()
            );
        }
    }
    let (hits, misses) = cache.stats();
    assert_eq!(misses, 5);
    assert_eq!(hits, 5);
}

#[test]
fn mixed_replay_matches_engine_in_both_modes() {
    let spec = mixed_traffic(
        TrafficParams {
            instances: 3,
            instance_nodes: 16,
            instance_edges: 26,
            requests: 80,
            mean_gap_us: 40,
            random_cqs: 2,
            ..Default::default()
        },
        2026,
    );
    let expected: Vec<Answer> = spec
        .requests
        .iter()
        .map(|r| {
            let data = &spec
                .instances
                .iter()
                .find(|(n, _)| *n == r.instance)
                .unwrap()
                .1;
            let sirup_workloads::traffic::TrafficAction::Query { kind, cq } = &r.action else {
                panic!("read-only spec contains a mutation");
            };
            let query = match kind {
                QueryKind::PiGoal => Query::PiGoal(OneCq::new(cq.clone()).unwrap()),
                QueryKind::SigmaAnswers => Query::SigmaAnswers(OneCq::new(cq.clone()).unwrap()),
                QueryKind::Delta => Query::Delta {
                    cq: cq.clone(),
                    disjoint: false,
                },
                QueryKind::DeltaPlus => Query::Delta {
                    cq: cq.clone(),
                    disjoint: true,
                },
            };
            engine_answer(&query, data)
        })
        .collect();
    let server = four_thread_server();
    let closed = server.replay(&spec, ReplayMode::Closed).unwrap();
    assert_eq!(closed.answers, expected, "closed-loop replay ≠ engine");
    // Second pass (warm) open-loop: same answers, no new plan builds.
    let (_, misses_before) = server.plan_cache().stats();
    let open = server.replay(&spec, ReplayMode::Open).unwrap();
    assert_eq!(open.answers, expected, "open-loop replay ≠ engine");
    assert_eq!(server.plan_cache().stats().1, misses_before);
}

/// The whole battery again on a server with **intra-request parallelism**
/// enabled (parallelism 4, threshold 2, so even small instances split):
/// answers must stay bit-identical to the sequential engine oracle, and
/// the scheduler must actually have fanned subtasks out.
#[test]
fn parallel_server_matches_engine() {
    let server = Server::new(ServerConfig {
        threads: 4,
        parallelism: 4,
        par_threshold: 2,
        shards: 4,
        plan_cache: 64,
        answer_cache: 0,
        ..ServerConfig::default()
    });
    let instances = test_instances();
    for (name, data) in &instances {
        server.load_instance(name.clone(), data.clone());
    }
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for query in all_queries() {
        for (name, data) in &instances {
            expected.push(engine_answer(&query, data));
            requests.push(Request::query(query.clone(), name.clone()));
        }
    }
    let got: Vec<Answer> = server
        .submit(&requests)
        .unwrap()
        .into_iter()
        .map(|r| r.answer)
        .collect();
    assert_eq!(got, expected, "parallel server ≠ sequential engine");
    let stats = server.scheduler_stats();
    assert!(stats.jobs_spawned as usize >= requests.len());
    assert!(
        stats.subtasks_spawned > 0,
        "parallelism 4 with threshold 2 must split some request"
    );
}
