//! Differential tests for the live-instance machinery: the server under
//! mutation traffic must agree with the engine's direct **sequential**
//! evaluation paths — those paths stay available precisely to serve as the
//! oracle here, whatever the server's thread count or intra-request
//! parallelism.
//!
//! Batch snapshot semantics make this checkable exactly: queries of a
//! replayed stream resolve their instance snapshots at submission time (the
//! catalog *before* the stream's mutations), while the stream's mutations
//! apply in ticket order, so
//!
//! * in-stream query answers ≡ engine on the initial instances,
//! * the post-replay catalog ≡ the spec's mutations folded over the initial
//!   instances ([`TrafficSpec::final_instances`]),
//! * post-replay query answers ≡ engine on those final instances — on every
//!   strategy path, including semi-naive materialisations carried forward
//!   incrementally through the whole mutation stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirup_core::program::{pi_q, sigma_q, DSirup};
use sirup_core::{FactOp, Node, OneCq, Pred, Structure};
use sirup_engine::disjunctive::certain_answer_dsirup;
use sirup_engine::eval::{certain_answer_goal, certain_answers_unary};
use sirup_server::{Answer, Query, ReplayMode, Request, Server, ServerConfig};
use sirup_workloads::paper;
use sirup_workloads::traffic::{parse_workload, TrafficAction, TrafficSpec};

fn server(threads: usize, answer_cache: usize) -> Server {
    Server::new(ServerConfig {
        threads,
        shards: 4,
        plan_cache: 64,
        answer_cache,
        ..ServerConfig::default()
    })
}

/// Direct, sequential reference answer (the differential oracle).
fn engine_answer(query: &Query, data: &Structure) -> Answer {
    match query {
        Query::PiGoal(q) => Answer::Bool(certain_answer_goal(&pi_q(q), data)),
        Query::SigmaAnswers(q) => Answer::Nodes(certain_answers_unary(&sigma_q(q), data)),
        Query::Delta { cq, disjoint } => {
            let d = DSirup {
                cq: cq.clone(),
                disjoint: *disjoint,
            };
            Answer::Bool(certain_answer_dsirup(&d, data))
        }
    }
}

fn bundled_spec() -> TrafficSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../workloads/mutations.sirupload"
    );
    parse_workload(&std::fs::read_to_string(path).expect("bundled workload readable"))
        .expect("bundled workload parses")
}

/// A small query battery hitting all three strategy paths.
fn battery() -> Vec<Query> {
    vec![
        Query::PiGoal(paper::q4_cq()),       // unbounded → semi-naive
        Query::SigmaAnswers(paper::q4_cq()), // unbounded → semi-naive
        Query::PiGoal(paper::q5()),          // bounded → rewriting
        Query::SigmaAnswers(paper::q7()),    // bounded → rewriting
        Query::Delta {
            cq: paper::q2(),
            disjoint: false,
        }, // dpll
        Query::Delta {
            cq: paper::q2(),
            disjoint: true,
        },
    ]
}

#[test]
fn bundled_mutation_replay_matches_engine() {
    let spec = bundled_spec();
    assert!(spec.mutation_op_count() > 0, "workload must mutate");
    let s = server(4, 64);
    let report = s.replay(&spec, ReplayMode::Closed).unwrap();
    assert_eq!(report.total, spec.requests.len());
    assert!(report.mutations > 0);
    assert!(report.mutation_ops_applied > 0);
    assert!(report.mutation_throughput() > 0.0);

    // In-stream queries answered against the initial snapshots.
    for (i, r) in spec.requests.iter().enumerate() {
        let TrafficAction::Query { .. } = &r.action else {
            let Answer::Applied { .. } = report.answers[i] else {
                panic!("mutation request {i} answered {:?}", report.answers[i]);
            };
            continue;
        };
        let initial = &spec
            .instances
            .iter()
            .find(|(n, _)| *n == r.instance)
            .unwrap()
            .1;
        let query = match Request::from_traffic(r).unwrap() {
            Request {
                action: sirup_server::Action::Query(q),
                ..
            } => q,
            _ => unreachable!(),
        };
        assert_eq!(
            report.answers[i],
            engine_answer(&query, initial),
            "in-stream answer {i} diverged from engine on the initial instance"
        );
    }

    // The live catalog equals the mutations folded over the initial state.
    let finals = spec.final_instances();
    for (name, expected) in &finals {
        let inst = s.catalog().get(name).unwrap();
        assert_eq!(
            &inst.data, expected,
            "catalog instance {name} diverged from the folded mutation stream"
        );
    }

    // Post-replay queries — including semi-naive answers served from
    // materialisations maintained incrementally through every mutation —
    // match the engine on the final instances.
    for query in battery() {
        for (name, data) in &finals {
            let resp = s
                .submit(&[Request::query(query.clone(), name.clone())])
                .unwrap();
            assert_eq!(
                resp[0].answer,
                engine_answer(&query, data),
                "post-replay {} answer diverged on {name} (strategy {})",
                query.kind_name(),
                resp[0].strategy
            );
        }
    }
}

#[test]
fn open_loop_replay_applies_the_same_final_state() {
    let spec = bundled_spec();
    let closed = server(4, 0);
    closed.replay(&spec, ReplayMode::Closed).unwrap();
    let open = server(3, 0);
    open.replay(&spec, ReplayMode::Open).unwrap();
    for (name, expected) in spec.final_instances() {
        assert_eq!(closed.catalog().get(&name).unwrap().data, expected);
        assert_eq!(open.catalog().get(&name).unwrap().data, expected);
    }
}

/// Open-loop replay submits in arrival order, which may differ from the
/// request-stream (ticket-reservation-at-resolve would invert ticket vs
/// queue order here and hang the pool — the regression this test pins):
/// decreasing arrivals must complete and apply mutations in arrival order.
#[test]
fn open_loop_out_of_order_arrivals_do_not_deadlock() {
    let text = "\
instance d = T(t), A(a), R(a,t)
request mutate d @500 = -T(t)
request mutate d @400 = +T(t)
request mutate d @300 = -T(t)
request mutate d @200 = +T(t)
request mutate d @100 = -T(t)
";
    let spec = parse_workload(text).unwrap();
    let s = server(4, 0);
    let report = s.replay(&spec, ReplayMode::Open).unwrap();
    assert_eq!(report.mutations, 5);
    // Arrival order: -T@100, +T@200, -T@300, +T@400, -T@500 ⇒ every op is
    // effective and the label ends up retracted.
    assert_eq!(report.mutation_ops_applied, 5);
    assert!(!s.catalog().get("d").unwrap().data.has_label(
        sirup_core::parse::st_with("T(t), A(a), R(a,t)", "t").1,
        Pred::T
    ));
}

/// Two threads racing whole mutation batches through `submit` on one
/// instance, single worker: ticket reservation happens at enqueue, so the
/// FIFO queue can never hold a ticket ahead of its predecessor (the
/// resolve-time-reservation regression deadlocked here).
#[test]
fn racing_submitters_single_worker_do_not_deadlock() {
    let s = server(1, 0);
    s.load_instance("d", sirup_core::parse::st("T(t)"));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let sref = &s;
                scope.spawn(move || {
                    for j in 0..10 {
                        let op = if (i + j) % 2 == 0 {
                            FactOp::AddLabel(Pred::A, Node(0))
                        } else {
                            FactOp::RemoveLabel(Pred::A, Node(0))
                        };
                        sref.submit(&[Request::mutation(vec![op], "d")]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    // All 40 tickets redeemed: a fresh direct mutation does not block.
    assert!(s
        .mutate_instance("d", &[FactOp::AddLabel(Pred::F, Node(0))])
        .is_ok());
}

/// Interleaved single-op mutations and reads on one instance: after every
/// mutation the served answers (materialised semi-naive, rewriting, dpll)
/// must match the engine on the current catalog data, and the semi-naive
/// materialisation must be the carried-forward one (ops_applied counts the
/// whole history), not a rebuild.
#[test]
fn served_answers_track_a_long_mutation_stream() {
    let mut rng = StdRng::seed_from_u64(99);
    let s = server(2, 16);
    s.load_instance("live", paper::d1());
    let queries = battery();
    // Warm the materialisations once so maintenance (not rebuild) is on
    // trial below.
    for q in &queries {
        s.submit(&[Request::query(q.clone(), "live")]).unwrap();
    }
    let unary = [Pred::F, Pred::T, Pred::A];
    let binary = [Pred::R, Pred::S];
    for step in 0..60 {
        let n = s.catalog().get("live").unwrap().data.node_count() as u32 + 1;
        let u = Node(rng.gen_range(0..n));
        let v = Node(rng.gen_range(0..n));
        let op = match rng.gen_range(0..4u32) {
            0 => FactOp::AddLabel(unary[rng.gen_range(0..3usize)], v),
            1 => FactOp::RemoveLabel(unary[rng.gen_range(0..3usize)], v),
            2 => FactOp::AddEdge(binary[rng.gen_range(0..2usize)], u, v),
            _ => FactOp::RemoveEdge(binary[rng.gen_range(0..2usize)], u, v),
        };
        s.submit(&[Request::mutation(vec![op], "live")]).unwrap();
        let data = s.catalog().get("live").unwrap().data.clone();
        for q in &queries {
            let resp = s.submit(&[Request::query(q.clone(), "live")]).unwrap();
            assert_eq!(
                resp[0].answer,
                engine_answer(q, &data),
                "step {step}: {} diverged after {op} (strategy {})",
                q.kind_name(),
                resp[0].strategy
            );
        }
    }
    // The semi-naive materialisations were maintained, not rebuilt: they
    // saw every effective op of the stream.
    let stats = s.instance_stats("live").unwrap();
    let maintained = stats
        .materializations
        .iter()
        .map(|(_, m)| m.ops_applied)
        .max()
        .unwrap_or(0);
    assert!(
        maintained >= 30,
        "expected a long maintenance history, got {maintained} ops"
    );
}

/// Readers racing a mutation stream: every answer any thread observes must
/// equal the engine's answer on *some* catalog version (reads are
/// snapshot-consistent — no torn state), and the final state is the ticket
/// order's.
#[test]
fn concurrent_readers_see_snapshot_consistent_answers() {
    let s = server(4, 0);
    let (d, n) = sirup_core::parse::parse_structure("T(t), A(a), R(a,t), A(b), R(b,a)").unwrap();
    s.load_instance("live", d);
    let q = Query::SigmaAnswers(OneCq::parse("F(x), R(x,y), T(y)"));
    // The stream toggles T(t): the closure alternates between {P(t),P(a),P(b)}
    // and {} — any snapshot a reader sees must answer one of the two.
    let full: Answer = Answer::Nodes(vec![n["t"], n["a"], n["b"]]);
    let empty = Answer::Nodes(vec![]);
    std::thread::scope(|scope| {
        let sref = &s;
        let writer = scope.spawn(move || {
            for i in 0..40 {
                let op = if i % 2 == 0 {
                    FactOp::RemoveLabel(Pred::T, n["t"])
                } else {
                    FactOp::AddLabel(Pred::T, n["t"])
                };
                sref.submit(&[Request::mutation(vec![op], "live")]).unwrap();
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                let (full, empty) = (full.clone(), empty.clone());
                scope.spawn(move || {
                    for _ in 0..30 {
                        let resp = sref.submit(&[Request::query(q.clone(), "live")]).unwrap();
                        assert!(
                            resp[0].answer == full || resp[0].answer == empty,
                            "torn answer {:?}",
                            resp[0].answer
                        );
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    });
    // 40 toggles starting with Remove ⇒ final state has T(t) re-added ⇒
    // the full closure.
    let resp = s.submit(&[Request::query(q, "live")]).unwrap();
    assert_eq!(resp[0].answer, full);
}

/// The bundled mutation replay with intra-request parallelism enabled:
/// ticket-ordered mutation effects, the folded final catalog, and
/// post-replay answers must all match the sequential oracle — the PR 4
/// ordering invariants survive the shared scheduler.
#[test]
fn parallel_mutation_replay_matches_engine() {
    let spec = bundled_spec();
    let s = Server::new(ServerConfig {
        threads: 4,
        parallelism: 4,
        par_threshold: 2,
        shards: 4,
        plan_cache: 64,
        answer_cache: 0,
        ..ServerConfig::default()
    });
    let report = s.replay(&spec, ReplayMode::Closed).unwrap();
    assert!(report.mutations > 0);
    // Sequential reference replay. Mutation answers carry *per-instance*
    // sequence numbers (ticket order), so they are deterministic across
    // thread counts and compare exactly — no normalisation.
    let oracle = server(4, 0);
    let oracle_report = oracle.replay(&spec, ReplayMode::Closed).unwrap();
    assert_eq!(
        report.answers, oracle_report.answers,
        "parallel replay answers diverged from the sequential server"
    );
    for (name, expected) in spec.final_instances() {
        assert_eq!(
            s.catalog().get(&name).unwrap().data,
            expected,
            "parallel mutation stream folded differently on {name}"
        );
    }
    for query in battery() {
        for (name, data) in &spec.final_instances() {
            let resp = s
                .submit(&[Request::query(query.clone(), name.clone())])
                .unwrap();
            assert_eq!(
                resp[0].answer,
                engine_answer(&query, data),
                "post-replay parallel answer diverged on {name}"
            );
        }
    }
}
