//! Telemetry must be observationally free: replaying the same workload
//! with the metrics registry on, off, and with span tracing enabled must
//! produce bit-identical answer streams. This is the acceptance gate for
//! instrumenting hot paths — a counter or span that changes an answer is
//! a bug, full stop.
//!
//! This lives in its own integration-test binary because it toggles the
//! **process-global** telemetry switches; sharing a process with tests
//! that assert monotone registry deltas would race them.

use sirup_core::telemetry;
use sirup_server::{Answer, ReplayMode, Server, ServerConfig};
use sirup_workloads::traffic::{parse_workload, TrafficSpec};

fn replay_answers(spec: &TrafficSpec) -> Vec<String> {
    let server = Server::new(ServerConfig {
        threads: 4,
        shards: 4,
        ..ServerConfig::default()
    });
    let report = server.replay(spec, ReplayMode::Closed).unwrap();
    report
        .answers
        .iter()
        .map(|a| match a {
            // Mutation stamps are deterministic ticket sequence numbers,
            // so the full stream (not just query answers) must agree.
            Answer::Applied { applied, seq } => format!("Applied {applied} seq {seq}"),
            other => format!("{other:?}"),
        })
        .collect()
}

#[test]
fn answers_are_identical_with_telemetry_on_off_and_traced() {
    let specs = [
        include_str!("../../../workloads/mutations.sirupload"),
        include_str!("../../../workloads/obda.sirupload"),
    ]
    .map(|text| parse_workload(text).unwrap());

    for (i, spec) in specs.iter().enumerate() {
        telemetry::set_enabled(true);
        telemetry::set_tracing(false);
        let baseline = replay_answers(spec);
        assert!(!baseline.is_empty());

        telemetry::set_enabled(false);
        let disabled = replay_answers(spec);
        assert_eq!(baseline, disabled, "workload {i}: registry off diverged");

        telemetry::set_enabled(true);
        telemetry::set_tracing(true);
        let traced = replay_answers(spec);
        assert_eq!(baseline, traced, "workload {i}: tracing on diverged");
        telemetry::set_tracing(false);
    }

    // While here (same process, switches under our control): disabling the
    // registry really does stop the meters.
    telemetry::set_enabled(false);
    let before = telemetry::snapshot().counter("sirup_requests_total");
    let _ = replay_answers(&specs[0]);
    let after = telemetry::snapshot().counter("sirup_requests_total");
    assert_eq!(before, after, "disabled registry must not move");
    telemetry::set_enabled(true);
}
