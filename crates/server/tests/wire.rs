//! Integration tests for the TCP front-end ([`sirup_server::wire`]) and
//! the write-ahead log behind it: protocol round trips over real sockets,
//! the panic-isolation guarantee (a poisoned request must not take the
//! daemon down), tail push, and full durable recovery — stop a daemon
//! after acknowledged mutations, reopen the same data directory, and the
//! catalog must equal the folded-ops oracle with per-instance sequence
//! numbers intact.

use sirup_core::parse::st;
use sirup_core::{FactOp, Node, OneCq, Pred, Structure};
use sirup_server::{Answer, Daemon, Query, Request, Server, ServerConfig, WireConfig};
use sirup_workloads::wire::{load_request, replay_over_wire, WireClient};
use sirup_workloads::{mixed_traffic, QueryKind, TrafficAction, TrafficParams};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sirup-wire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn daemon(server: Server) -> Daemon {
    Daemon::start(Arc::new(server), WireConfig::default()).unwrap()
}

fn client(d: &Daemon) -> WireClient {
    WireClient::connect(d.addr()).unwrap()
}

#[test]
fn protocol_round_trips_over_a_socket() {
    let d = daemon(Server::with_defaults());
    let mut c = client(&d);
    assert_eq!(c.request("ping").unwrap(), "ok pong");

    let reply = c.request("load d 2\n+F(n0),+T(n1)\n+R(n0,n1)").unwrap();
    assert_eq!(reply, "ok loaded d nodes 2 atoms 3");
    assert_eq!(c.request("list").unwrap(), "ok instances d");

    // The paper's flagship sirup shape: F(x), R(x,y), T(y).
    let q = "query pi d = F(x), R(x,y), T(y)";
    assert_eq!(c.request(q).unwrap(), "answer bool true");
    // Sigma answers are the P-closure nodes: here only the T-labelled n1.
    assert_eq!(
        c.request("query sigma d = F(x), R(x,y), T(y)").unwrap(),
        "answer nodes n1"
    );

    // Retract the goal label; the answer flips; seq counts per instance.
    assert_eq!(
        c.request("mutate d = -T(n1)").unwrap(),
        "answer applied 1 seq 1"
    );
    assert_eq!(c.request(q).unwrap(), "answer bool false");
    assert_eq!(
        c.request("mutate d = +T(n1)").unwrap(),
        "answer applied 1 seq 2"
    );
    assert_eq!(c.request(q).unwrap(), "answer bool true");

    let stats = c.request("stats d").unwrap();
    assert!(
        stats.starts_with("ok stats d seq 2 nodes 2 unary 2 binary 1"),
        "unexpected stats reply: {stats}"
    );
    let dump = c.request("dump d").unwrap();
    let (head, body) = dump.split_once('\n').unwrap();
    assert_eq!(head, "ok dump d nodes 2 seq 2");
    assert_eq!(body, st("F(u), R(u,v), T(v)").to_string());

    // Errors are replies, not disconnects.
    assert!(c
        .request("query pi nosuch = F(x)")
        .unwrap()
        .starts_with("error "));
    assert!(c
        .request("mutate d = +T(bogus)")
        .unwrap()
        .starts_with("error "));
    assert!(c.request("frobnicate").unwrap().starts_with("error "));

    assert_eq!(c.request("remove d").unwrap(), "ok removed true");
    assert_eq!(c.request("remove d").unwrap(), "ok removed false");
}

/// Satellite hardening check: a request whose handler panics must poison
/// nothing — the same connection and fresh connections keep getting
/// answers. `__test_panic` is the deliberate crash hook.
#[test]
fn a_panicking_request_does_not_take_the_daemon_down() {
    let d = daemon(Server::with_defaults());
    let mut c = client(&d);
    c.request("load d 2\n+F(n0),+T(n1),+R(n0,n1)").unwrap();

    for _ in 0..3 {
        assert_eq!(
            c.request("__test_panic").unwrap(),
            "error internal: request handler panicked"
        );
    }
    // Same connection still answers — including paths through the shared
    // caches whose locks recover from poisoning.
    assert_eq!(
        c.request("query pi d = F(x), R(x,y), T(y)").unwrap(),
        "answer bool true"
    );
    assert_eq!(
        c.request("mutate d = -T(n1)").unwrap(),
        "answer applied 1 seq 1"
    );
    // And fresh connections are unaffected.
    let mut c2 = client(&d);
    assert_eq!(
        c2.request("query pi d = F(x), R(x,y), T(y)").unwrap(),
        "answer bool false"
    );
}

#[test]
fn tail_pushes_mutations_to_subscribers() {
    let d = daemon(Server::with_defaults());
    let mut watcher = client(&d);
    let mut writer = client(&d);
    writer.request("load d 2\n+F(n0),+R(n0,n1)").unwrap();

    assert_eq!(watcher.request("tail d").unwrap(), "ok tail d seq 0");
    writer.request("mutate d = +T(n1)").unwrap();
    writer.request("mutate d = -T(n1),+T(n0)").unwrap();

    watcher
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(watcher.next_frame().unwrap().unwrap(), "op d 1 = +T(n1)");
    assert_eq!(
        watcher.next_frame().unwrap().unwrap(),
        "op d 2 = -T(n1),+T(n0)"
    );
}

/// The acceptance shape of the durability tentpole, in-process: mutate a
/// durable server over the wire, drop daemon and server without any clean
/// shutdown step, reopen the data directory, and the recovered catalog
/// must equal the folded-ops oracle — sequence numbers included.
#[test]
fn durable_server_recovers_wire_mutations_after_a_restart() {
    let dir = tmpdir("recover");
    let addr;
    {
        let server = Server::open_durable(ServerConfig::default(), &dir).unwrap();
        let d = daemon(server);
        addr = d.addr();
        let mut c = WireClient::connect(addr).unwrap();
        c.request("load a 3\n+F(n0),+R(n0,n1),+T(n1)").unwrap();
        c.request("load b 2\n+A(n0),+S(n0,n1)").unwrap();
        assert_eq!(
            c.request("mutate a = +T(n2),+R(n1,n2)").unwrap(),
            "answer applied 2 seq 1"
        );
        assert_eq!(
            c.request("mutate b = -A(n0)").unwrap(),
            "answer applied 1 seq 1"
        );
        assert_eq!(
            c.request("mutate a = -T(n1)").unwrap(),
            "answer applied 1 seq 2"
        );
        // No shutdown hook, no snapshot: the WAL alone carries the state.
    }
    let reopened = Server::open_durable(ServerConfig::default(), &dir).unwrap();
    let a = reopened.catalog().get("a").unwrap();
    let b = reopened.catalog().get("b").unwrap();
    // Folded-ops oracles: the loads plus every acknowledged mutation.
    let mut oracle_a = Structure::with_nodes(3);
    oracle_a.apply_all(&[
        FactOp::AddLabel(Pred::F, Node(0)),
        FactOp::AddEdge(Pred::R, Node(0), Node(1)),
        FactOp::AddLabel(Pred::T, Node(1)),
        FactOp::AddLabel(Pred::T, Node(2)),
        FactOp::AddEdge(Pred::R, Node(1), Node(2)),
        FactOp::RemoveLabel(Pred::T, Node(1)),
    ]);
    assert_eq!(a.data, oracle_a);
    assert_eq!(a.seq, 2, "per-instance seq must survive recovery");
    let mut oracle_b = Structure::with_nodes(2);
    oracle_b.apply_all(&[
        FactOp::AddLabel(Pred::A, Node(0)),
        FactOp::AddEdge(Pred::S, Node(0), Node(1)),
        FactOp::RemoveLabel(Pred::A, Node(0)),
    ]);
    assert_eq!(b.data, oracle_b);
    assert_eq!(b.seq, 1);
    // Recovery re-arms the sequence: the next mutation continues it.
    let out = reopened
        .catalog()
        .mutate("a", &[FactOp::AddLabel(Pred::T, Node(1))])
        .unwrap();
    assert_eq!(out.seq, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot + compaction is transparent: state recovered through a
/// snapshot equals state recovered through the raw log.
#[test]
fn snapshot_compaction_is_transparent_to_recovery() {
    let dir = tmpdir("snap");
    {
        let server = Server::open_durable(ServerConfig::default(), &dir).unwrap();
        server.load_instance("d", st("F(u), R(u,v), T(v)"));
        let d = daemon(server);
        let mut c = client(&d);
        c.request("mutate d = +T(n0)").unwrap();
        assert_eq!(c.request("snapshot").unwrap(), "ok snapshot");
        c.request("mutate d = -T(n0),+A(n1)").unwrap();
    }
    let reopened = Server::open_durable(ServerConfig::default(), &dir).unwrap();
    let inst = reopened.catalog().get("d").unwrap();
    let mut oracle = st("F(u), R(u,v), T(v)");
    oracle.apply_all(&[
        FactOp::AddLabel(Pred::T, Node(0)),
        FactOp::RemoveLabel(Pred::T, Node(0)),
        FactOp::AddLabel(Pred::A, Node(1)),
    ]);
    assert_eq!(inst.data, oracle);
    assert_eq!(inst.seq, 2, "seq must continue across the snapshot epoch");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A full generated workload replayed over TCP answers exactly like the
/// same requests evaluated in-process, one at a time — the wire layer adds
/// transport, not semantics. (The oracle is sequential [`Server::answer_one`],
/// not [`Server::replay`]: closed-loop replay batches requests, and queries
/// batched behind a mutation answer against their submission-time snapshot.)
#[test]
fn wire_replay_matches_in_process_replay() {
    let spec = mixed_traffic(
        TrafficParams {
            instances: 2,
            instance_nodes: 14,
            instance_edges: 24,
            requests: 60,
            mutation_ratio: 0.3,
            ..TrafficParams::default()
        },
        0xA11CE,
    );
    let d = daemon(Server::with_defaults());
    let wire_replies = replay_over_wire(&spec, &d.addr().to_string()).unwrap();
    assert_eq!(wire_replies.len(), spec.requests.len());

    let oracle = Server::with_defaults();
    for (name, data) in &spec.instances {
        oracle.load_instance(name.clone(), data.clone());
    }
    let rendered: Vec<String> = spec
        .requests
        .iter()
        .map(|r| {
            let query = match &r.action {
                TrafficAction::Query { kind, cq } => match kind {
                    QueryKind::PiGoal => Query::PiGoal(OneCq::new(cq.clone()).unwrap()),
                    QueryKind::SigmaAnswers => Query::SigmaAnswers(OneCq::new(cq.clone()).unwrap()),
                    QueryKind::Delta => Query::Delta {
                        cq: cq.clone(),
                        disjoint: false,
                    },
                    QueryKind::DeltaPlus => Query::Delta {
                        cq: cq.clone(),
                        disjoint: true,
                    },
                },
                TrafficAction::Mutate { ops } => {
                    let resp = oracle
                        .answer_one(&Request::mutation(ops.clone(), r.instance.clone()))
                        .unwrap();
                    let Answer::Applied { applied, seq } = resp.answer else {
                        panic!("mutation answered {:?}", resp.answer);
                    };
                    return format!("answer applied {applied} seq {seq}");
                }
            };
            let resp = oracle
                .answer_one(&Request::query(query, r.instance.clone()))
                .unwrap();
            match resp.answer {
                Answer::Bool(b) => format!("answer bool {b}"),
                Answer::Nodes(nodes) => {
                    let list: Vec<String> = nodes.iter().map(|n| format!("n{}", n.0)).collect();
                    format!("answer nodes {}", list.join(","))
                }
                Answer::Applied { .. } => unreachable!("query answered with Applied"),
                Answer::Overloaded => unreachable!("adaptive admission is off in this test"),
            }
        })
        .collect();
    assert_eq!(
        wire_replies, rendered,
        "wire replay diverged from in-process replay"
    );

    // And the final wire-side catalog matches the folded oracle (checked
    // through the stats counters the protocol exposes).
    let mut c = client(&d);
    for (name, expected) in spec.final_instances() {
        let stats = c.request(&format!("stats {name}")).unwrap();
        let words: Vec<&str> = stats.split_whitespace().collect();
        assert_eq!(words[0..3], ["ok", "stats", name.as_str()], "{stats}");
        let field = |key: &str| -> usize {
            let at = words.iter().position(|w| *w == key).unwrap();
            words[at + 1].parse().unwrap()
        };
        assert_eq!(field("nodes"), expected.node_count(), "{name}: {stats}");
        assert_eq!(field("unary"), expected.label_count(), "{name}: {stats}");
        assert_eq!(field("binary"), expected.edge_count(), "{name}: {stats}");
    }
}

/// The telemetry surface over the wire: `metrics` returns a Prometheus
/// text exposition carrying the expected families (including the
/// per-(program, instance) table fed by this test's own traffic), and
/// `trace` returns rendered span trees — the daemon switches tracing on at
/// startup, so the request roots and their timed children are in the
/// rings.
#[test]
fn metrics_and_trace_verbs_expose_the_registry() {
    let d = daemon(Server::with_defaults());
    let mut c = client(&d);
    c.request("load telem 2\n+F(n0),+R(n0,n1),+T(n1)").unwrap();
    for _ in 0..4 {
        assert_eq!(
            c.request("query pi telem = F(x), R(x,y), T(y)").unwrap(),
            "answer bool true"
        );
    }
    assert_eq!(
        c.request("mutate telem = +A(n0)").unwrap(),
        "answer applied 1 seq 1"
    );

    let reply = c.request("metrics").unwrap();
    let (head, body) = reply.split_once('\n').unwrap();
    assert_eq!(head, "ok metrics");
    for needle in [
        "# TYPE sirup_requests_total counter",
        "sirup_scheduler_workers",
        "sirup_plan_compiles_total",
        "sirup_mutations_applied_total",
        "sirup_frame_decode_us_bucket{le=\"+Inf\"}",
        "instance=\"telem\"",
        "sirup_program_cardinality_total",
        "sirup_program_latency_us_bucket",
        "sirup_program_latency_p99_us",
        "sirup_plan_cache_hits_total",
        "sirup_answer_cache_misses_total",
    ] {
        assert!(body.contains(needle), "metrics missing {needle}:\n{body}");
    }
    // The per-key table saw this test's traffic: 4 pi queries (however
    // they were served) and 1 mutation against `telem`.
    let telem_requests: u64 = body
        .lines()
        .filter(|l| {
            l.starts_with("sirup_program_requests_total{") && l.contains("instance=\"telem\"")
        })
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(telem_requests, 5, "per-key request count:\n{body}");

    // `trace 0` returns every recent root; each line parses as a span.
    let reply = c.request("trace 0").unwrap();
    let mut lines = reply.lines();
    let head = lines.next().unwrap();
    let n: usize = head.strip_prefix("ok trace ").unwrap().parse().unwrap();
    assert!(n >= 5, "expected at least this test's 5 roots: {head}");
    let spans: Vec<&str> = lines.collect();
    assert!(spans.iter().all(|l| l.starts_with("span id=")), "{reply}");
    assert!(
        spans
            .iter()
            .any(|l| l.contains("name=request") && l.contains("@ telem")),
        "no request root for telem:\n{reply}"
    );
    // An impossible threshold filters everything out.
    assert_eq!(c.request("trace 999999999").unwrap(), "ok trace 0");
    // A bad threshold is an error reply, not a disconnect.
    assert!(c.request("trace soon").unwrap().starts_with("error "));
}

/// Loads over the wire validate their declared node count.
#[test]
fn load_rejects_out_of_range_nodes_and_retracts() {
    let d = daemon(Server::with_defaults());
    let mut c = client(&d);
    assert!(c
        .request("load d 2\n+F(n5)")
        .unwrap()
        .starts_with("error load d: ops mention node n5"));
    assert!(c
        .request("load d 2\n-F(n0)")
        .unwrap()
        .starts_with("error load bodies are insert-only"));
    // The renderer and the parser agree on the format.
    let data = st("F(u), R(u,v), T(v)");
    let reply = c.request(&load_request("d", &data)).unwrap();
    assert_eq!(reply, "ok loaded d nodes 2 atoms 3");
}
