//! Search small span-1 ditree Λ-CQs for the q5/q6/q8 behaviours
//! (used once to pin down the reconstructions in `paper.rs`).

use sirup_cactus::{find_bound, is_focused_up_to, BoundSearch, Boundedness};
use sirup_core::cq::{solitary_f, solitary_t};
use sirup_core::shape::DitreeView;
use sirup_workloads::random::{random_ditree_cq, DitreeCqParams};

fn main() {
    let mut found = (0, 0, 0);
    for nodes in [5usize, 6, 7, 8] {
        for seed in 0..4000u64 {
            let params = DitreeCqParams {
                nodes,
                twin_prob: 0.5,
                solitary_ts: 1,
                s_edge_prob: 0.0,
            };
            let Some(q) = random_ditree_cq(params, seed ^ ((nodes as u64) << 32)) else {
                continue;
            };
            let s = q.structure();
            let tv = DitreeView::of(s).unwrap();
            let f = solitary_f(s)[0];
            let t = solitary_t(s)[0];
            if tv.comparable(f, t) {
                continue;
            }
            if !sirup_hom::is_minimal(s) {
                continue;
            }
            let pi = find_bound(
                &q,
                BoundSearch {
                    max_d: 2,
                    horizon: 4,
                    cap: 50_000,
                    sigma: false,
                },
            );
            let Boundedness::BoundedEvidence { d, .. } = pi else {
                continue;
            };
            let foc = is_focused_up_to(&q, 2, 50_000);
            let sig = find_bound(
                &q,
                BoundSearch {
                    max_d: 2,
                    horizon: 4,
                    cap: 50_000,
                    sigma: true,
                },
            );
            let sd = matches!(sig, Boundedness::BoundedEvidence { .. });
            if foc == Some(true) && sd && d == 1 && found.0 < 4 {
                println!("Q5-LIKE n={nodes} seed={seed} d={d}: {s}");
                found.0 += 1;
            }
            if foc == Some(false) && !sd && found.1 < 4 {
                println!("Q6-LIKE n={nodes} seed={seed} d={d}: {s}");
                found.1 += 1;
            }
            if d == 2 && found.2 < 4 {
                println!("Q8-LIKE n={nodes} seed={seed} d={d} foc={foc:?} sigb={sd}: {s}");
                found.2 += 1;
            }
        }
        println!("-- nodes={nodes} done, found={found:?}");
    }
}
