//! Enumerate two-branch caterpillar Λ-CQs of span 1 looking for minimal
//! Prop. 2 rewriting depth exactly 2 (the q8 phenomenon of Example 5).
//!
//! Shape: root r (optionally a twin), branch B1 = chain with exactly one
//! solitary T, branch B2 = chain with exactly one solitary F; remaining
//! chain nodes are unlabeled or twins.

use sirup_cactus::{find_bound, BoundSearch, Boundedness};
use sirup_core::cq::{solitary_f, solitary_t};
use sirup_core::shape::DitreeView;
use sirup_core::{Node, OneCq, Pred, Structure};

fn build(root_twin: bool, b1: &[u8], b2: &[u8]) -> Option<OneCq> {
    // label codes: 0 none, 1 twin, 2 = T (branch1) / F (branch2)
    let n = 1 + b1.len() + b2.len();
    let mut s = Structure::with_nodes(n);
    if root_twin {
        s.add_label(Node(0), Pred::F);
        s.add_label(Node(0), Pred::T);
    }
    let mut prev = Node(0);
    for (i, &l) in b1.iter().enumerate() {
        let v = Node(1 + i as u32);
        s.add_edge(Pred::R, prev, v);
        prev = v;
        match l {
            1 => {
                s.add_label(v, Pred::F);
                s.add_label(v, Pred::T);
            }
            2 => {
                s.add_label(v, Pred::T);
            }
            _ => {}
        }
    }
    prev = Node(0);
    for (i, &l) in b2.iter().enumerate() {
        let v = Node(1 + b1.len() as u32 + i as u32);
        s.add_edge(Pred::R, prev, v);
        prev = v;
        match l {
            1 => {
                s.add_label(v, Pred::F);
                s.add_label(v, Pred::T);
            }
            2 => {
                s.add_label(v, Pred::F);
            }
            _ => {}
        }
    }
    OneCq::new(s).ok()
}

fn branch_options(len: usize) -> Vec<Vec<u8>> {
    // All sequences over {0,1} with exactly one position upgraded to 2.
    let mut out = Vec::new();
    for mask in 0..(1u32 << len) {
        for special in 0..len {
            let seq: Vec<u8> = (0..len)
                .map(|i| {
                    if i == special {
                        2
                    } else {
                        ((mask >> i) & 1) as u8
                    }
                })
                .collect();
            out.push(seq);
        }
    }
    out
}

fn main() {
    let mut found = 0;
    for l1 in 2..=5usize {
        for l2 in 2..=5usize {
            for root_twin in [true, false] {
                for b1 in branch_options(l1) {
                    for b2 in branch_options(l2) {
                        let Some(q) = build(root_twin, &b1, &b2) else {
                            continue;
                        };
                        let s = q.structure();
                        if q.span() != 1 {
                            continue;
                        }
                        let tv = DitreeView::of(s).unwrap();
                        let f = solitary_f(s)[0];
                        let t = solitary_t(s)[0];
                        if tv.comparable(f, t) || !sirup_hom::is_minimal(s) {
                            continue;
                        }
                        let pi = find_bound(
                            &q,
                            BoundSearch {
                                max_d: 2,
                                horizon: 5,
                                cap: 50_000,
                                sigma: false,
                            },
                        );
                        if let Boundedness::BoundedEvidence { d: 2, .. } = pi {
                            println!("Q8-LIKE rt={root_twin} b1={b1:?} b2={b2:?}: {s}");
                            found += 1;
                            if found >= 8 {
                                return;
                            }
                        }
                    }
                }
            }
        }
        println!("-- l1={l1} done found={found}");
    }
}
