//! Scratch: verify reconstructions of q5-q8 against the paper's claims.
use sirup_cactus::{find_bound, is_focused_up_to, BoundSearch, Boundedness};
use sirup_workloads::paper;

fn report(name: &str, q: &sirup_core::OneCq, horizon: u32) {
    let foc = is_focused_up_to(q, 2, 100_000);
    let pi = find_bound(
        q,
        BoundSearch {
            max_d: 2,
            horizon,
            cap: 100_000,
            sigma: false,
        },
    );
    let sig = find_bound(
        q,
        BoundSearch {
            max_d: 2,
            horizon,
            cap: 100_000,
            sigma: true,
        },
    );
    println!(
        "{name}: span={} focused={foc:?} pi={pi:?} sigma={sig:?}",
        q.span()
    );
}

fn main() {
    report("q5", &paper::q5(), 5);
    report("q6", &paper::q6(), 5);
    report("q7", &paper::q7(), 5);
    report("q8", &paper::q8(), 5);
    let _ = Boundedness::Inconclusive;
}
// (rerun manually when reconstructions change)
