//! The Appendix E reduction instances (Claim 9.3): L-hardness of d-sirups
//! with an undischarged periodic structure.
//!
//! Given a periodic structure `𝔓 = (𝑩, 𝑷, 𝑬)` for which none of
//! (h1)–(h4) holds, Appendix E reduces undirected reachability to
//! `(Δ_q, G)` evaluation: every graph vertex `v` gets a copy `¯𝑷_v` of the
//! periodic part's blow-up; for every undirected edge `{u, v}`, the
//! `𝑷`-internal contacts are rewired *across* the two copies (in both
//! directions); `¯𝑩` is attached at `s` and `¯𝑬` at `t`. Then `s ↔ t` in
//! `G` iff the certain answer is 'yes'.
//!
//! This module implements the construction for **span-1 Λ-CQs** — the case
//! the paper's illustration spells out (the unique non-degenerate periodic
//! structure has `𝑩` = root segment, `𝑷` = one segment with two `A`-nodes
//! on a self-loop, `𝑬` = leaf segment). The self-loop contact materialises
//! as the per-vertex `A`-constants; the cross-copy rewiring gives, per
//! graph edge `{u, v}`, two copies of the `𝑷`-segment: one with
//! focus ↦ `u`, budded slot ↦ `v`, and one the other way round.

use crate::reach::Digraph;
use sirup_core::builder::GlueBuilder;
use sirup_core::{Node, OneCq, Pred, Structure};

/// Build the Appendix E data instance for a span-1 Λ-CQ `q` over the
/// undirected graph underlying `g`, with designated vertices `s` and `t`.
///
/// Layout: the first `g.n` nodes of the result are the per-vertex
/// `A`-contacts (vertex `v` is `Node(v)`), so callers can inspect labels.
///
/// Panics if `q` is not span-1.
pub fn appendix_e_instance(q: &OneCq, g: &Digraph, s: usize, t: usize) -> Structure {
    assert_eq!(q.span(), 1, "the Appendix E generator is for span-1 Λ-CQs");
    let focus = q.focus();
    let slot = q.solitary_t()[0];
    // 𝑷-segment: focus and budded slot both A.
    let p_seg = q.segment(Pred::A, &[true]);
    // ¯𝑩: the root segment with its slot budded (F at the focus stays).
    let b_seg = q.segment(Pred::F, &[true]);
    // ¯𝑬: the leaf segment (A at the focus, T intact).
    let e_seg = q.segment(Pred::A, &[false]);

    let mut b = GlueBuilder::new();
    let verts: Vec<Node> = (0..g.n).map(|_| b.add_fresh()).collect();
    for &v in &verts {
        b.label(v, Pred::A);
    }
    // Cross-copy rewiring: one 𝑷-segment per direction of each edge.
    for &(u, v) in &g.edges {
        for (from, to) in [(u, v), (v, u)] {
            let off = b.add(&p_seg);
            b.glue(Node(off + focus.0), verts[from]);
            b.glue(Node(off + slot.0), verts[to]);
        }
    }
    // ¯𝑩 at s: the root segment's budded slot contacts the s-vertex.
    let off = b.add(&b_seg);
    b.glue(Node(off + slot.0), verts[s]);
    // ¯𝑬 at t: the leaf segment's focus contacts the t-vertex.
    let off = b.add(&e_seg);
    b.glue(Node(off + focus.0), verts[t]);
    let (d, _) = b.finish();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use sirup_core::program::DSirup;
    use sirup_engine::disjunctive::certain_answer_dsirup;

    #[test]
    fn single_edge_answers_yes() {
        let q = paper::q4_cq();
        let g = Digraph {
            n: 2,
            edges: vec![(0, 1)],
        };
        let d = appendix_e_instance(&q, &g, 0, 1);
        assert!(certain_answer_dsirup(
            &DSirup::new(q.structure().clone()),
            &d
        ));
    }

    #[test]
    fn disconnected_vertices_answer_no() {
        let q = paper::q4_cq();
        let g = Digraph {
            n: 2,
            edges: vec![],
        };
        let d = appendix_e_instance(&q, &g, 0, 1);
        assert!(!certain_answer_dsirup(
            &DSirup::new(q.structure().clone()),
            &d
        ));
    }

    #[test]
    fn biconditional_on_random_graphs() {
        // Claim 9.3 biconditional for q4 (whose Theorem 9 verdict is LHard
        // with a non-empty periodic part): s ↔ t iff 'yes'.
        let q = paper::q4_cq();
        let delta = DSirup::new(q.structure().clone());
        for seed in 0..8 {
            let g = Digraph::random_dag(6, 0.25, seed);
            for (s, t) in [(0usize, 5usize), (1, 4), (3, 3)] {
                let d = appendix_e_instance(&q, &g, s, t);
                assert_eq!(
                    certain_answer_dsirup(&delta, &d),
                    g.connected(s, t),
                    "seed {seed}, {s}↔{t}"
                );
            }
        }
    }

    #[test]
    fn instance_layout_puts_vertices_first() {
        let q = paper::q4_cq();
        let g = Digraph::path(3);
        let d = appendix_e_instance(&q, &g, 0, 2);
        for v in 0..3u32 {
            assert!(d.has_label(Node(v), Pred::A), "vertex {v} lost its A");
        }
        // q4's segment has 1 interior node (the parent y); per edge
        // direction one copy (2 per edge), plus B and E copies.
        // 3 vertices + 2 edges × 2 copies × 1 interior + B(2 fresh: x, y)
        // + E(2 fresh: y, z).
        assert_eq!(d.node_count(), 3 + 4 + 2 + 2);
    }

    #[test]
    #[should_panic(expected = "span-1")]
    fn rejects_non_span1() {
        let q = OneCq::parse("F(x), R(x,y1), T(y1), S(x,y2), T(y2)");
        let g = Digraph::path(2);
        let _ = appendix_e_instance(&q, &g, 0, 1);
    }

    #[test]
    fn witness_machinery_connects_to_the_reduction() {
        // Theorem 9 says q4 is L-hard; the machinery exhibits a periodic
        // witness, and this module's reduction realises Claim 9.3 for it.
        use sirup_classifier::LambdaMachine;
        let m = LambdaMachine::new(&paper::q4_cq()).unwrap();
        let w = m.find_witness().expect("q4 must have a witness");
        assert!(!w.edges.is_empty());
    }
}
