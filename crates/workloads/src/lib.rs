//! # sirup-workloads
//!
//! The paper's named objects and workload generators.
//!
//! * [`paper`]: the CQs `q1…q8` of Examples 1, 4, 5 and the data instances
//!   `D1`, `D2` of Example 2 (with documented reconstructions where the
//!   figures are ambiguous);
//! * [`reach`]: random (un)directed graphs and the reduction instances
//!   `D_G` of Theorem 7 / Theorem 11 / Appendix G (reachability → d-sirup
//!   evaluation);
//! * [`random`]: seeded random generators for ditree CQs, Λ-CQs, path CQs
//!   and data instances, used by property tests and benchmarks;
//! * [`traffic`]: mixed request streams over the paper's named programs and
//!   random instances, plus the workload text format replayed by
//!   `sirup-server` and `sirupctl serve`/`replay`;
//! * [`wire`]: a std-only client for the sirup wire protocol — connect to
//!   a `sirupctl serve` daemon, replay a [`TrafficSpec`] over TCP, tail
//!   mutation streams.

pub mod appendix_e;
pub mod paper;
pub mod random;
pub mod reach;
pub mod traffic;
pub mod wire;

pub use appendix_e::appendix_e_instance;
pub use paper::{d1, d2, q1, q2, q2_cq, q3, q3_cq, q4, q4_cq, q5, q6, q7, q8};
pub use reach::{dag_reduction_instance, undirected_reduction_instance, Digraph};
pub use traffic::{
    mixed_traffic, parse_workload, phase_traffic, render_workload, scaling_traffic, QueryKind,
    TrafficAction, TrafficParams, TrafficRequest, TrafficSpec,
};
pub use wire::{replay_over_wire, WireClient};
