//! The paper's named CQs and data instances.
//!
//! `q1`–`q4` are unambiguous in Example 1 and reproduced verbatim. The path
//! CQ `q5`, the CQ `q6` of Example 4, `q7` (p. 13) and the ditree `q8` of
//! Example 5 are given in the paper only as figures whose node labels are
//! partially ambiguous in the source we work from; we provide
//! reconstructions that are **verified in the test-suite to have exactly the
//! behaviour the paper proves for them** (focusedness, boundedness,
//! rewriting depth, span). Each reconstruction documents its intent.

use sirup_core::parse::st;
use sirup_core::{OneCq, Structure};

/// `q1` (Example 1): the R-path `F → F → T → T`. Evaluating `(Δ_q1, G)` is
/// coNP-complete.
pub fn q1() -> Structure {
    st("F(a), R(a,b), F(b), R(b,c), T(c), R(c,d), T(d)")
}

/// `q2` (Example 1): the path `T —S→ T —R→ F`. Evaluating `(Δ_q2, G)` is
/// P-complete. A 1-CQ with two solitary `T`s.
pub fn q2() -> Structure {
    st("T(x), S(x,y), T(y), R(y,z), F(z)")
}

/// `q2` as a validated 1-CQ.
pub fn q2_cq() -> OneCq {
    OneCq::new(q2()).expect("q2 is a 1-CQ")
}

/// `q3` (Example 1): the path `T —R→ T —R→ F`. NL-complete.
pub fn q3() -> Structure {
    st("T(x), R(x,y), T(y), R(y,z), F(z)")
}

/// `q3` as a validated 1-CQ.
pub fn q3_cq() -> OneCq {
    OneCq::new(q3()).expect("q3 is a 1-CQ")
}

/// `q4` (Example 1): `F(x), R(y,x), R(y,z), T(z)` — the quasi-symmetric
/// ditree. L-complete.
pub fn q4() -> Structure {
    st("F(x), R(y,x), R(y,z), T(z)")
}

/// `q4` as a validated 1-CQ.
pub fn q4_cq() -> OneCq {
    OneCq::new(q4()).expect("q4 is a 1-CQ")
}

/// `q5` (Examples 1 and 4): a 1-CQ with one solitary `F`, one solitary `T`
/// and FT-twins, for which `q5` is focused and both `(Π_q5, G)` and
/// `(Σ_q5, P)` are bounded — FO-rewritable to `C0 ∨ C1`.
///
/// **Reconstruction.** The figure's node identities are illegible in our
/// source; moreover the paper states (p. 13) that q5–q8 contain only
/// `≺`-incomparable solitary pairs, so q5 cannot be a directed path (paths
/// are rigid, hence minimal, and minimal comparable pairs are NL-hard by
/// Theorem 7 (i) — contradicting q5's AC0 membership). We use a 6-node
/// minimal ditree Λ-CQ found by exhaustive search to satisfy **exactly**
/// the paper's claims for q5 (verified in the test-suite): focused, and
/// both `(Π, G)` and `(Σ, P)` bounded with minimal rewriting depth 1
/// (`C0 ∨ C1`).
pub fn q5() -> OneCq {
    OneCq::parse(
        "T(b), F(c), T(c), F(e), \
         R(a,b), R(a,c), R(b,d), R(c,e), R(d,g)",
    )
}

/// `q6` (Example 4): an unfocused 1-CQ for which `(Π_q6, G)` is
/// FO-rewritable but `(Σ_q6, P)` is **not** bounded.
///
/// **Reconstruction.** The figure's mechanism is that every hom between
/// deep cactuses maps the root focus to an FT-twin, so `(Π, G)` folds while
/// the root-focus-fixing `(Σ, P)` homomorphisms are blocked. This 6-node
/// minimal ditree (found by exhaustive search, verified in the test-suite)
/// realises it: root twin `a` with children the solitary `F(b)` and a twin
/// `c`; the solitary `T(e)` under `c`.
pub fn q6() -> OneCq {
    OneCq::parse(
        "F(a), T(a), F(b), F(c), T(c), T(e), \
         R(a,b), R(a,c), R(b,d), R(c,e), R(d,g)",
    )
}

/// `q7` (p. 13): a 1-CQ with FT-twins and only incomparable solitary pairs
/// for which `(Δ_q7, G)` is FO-rewritable (Claim 7.1 case (1) shape).
///
/// **Reconstruction.** As for q5 (see there), q7 cannot be a literal path;
/// we use a 7-node minimal ditree Λ-CQ (found by search, verified in the
/// test-suite) that is focused and bounded with rewriting depth 1, with the
/// solitary `F` strictly deeper than the solitary `T`'s branch point.
pub fn q7() -> OneCq {
    OneCq::parse(
        "F(b), T(b), T(c), F(d), T(d), F(g), \
         R(a,b), R(b,c), R(b,d), R(c,e), R(d,g), R(e,f)",
    )
}

/// `q8` (Example 5): a Λ-CQ of span 1 — a ditree with FT-twins, a solitary
/// `F` and a solitary `T` on incomparable branches — for which `(Δ_q8, G)`
/// is FO-rewritable to `∃z̄ (C0 ∨ C1 ∨ C2)`.
///
/// **Reconstruction.** A minimal ditree Λ-CQ found by exhaustive search,
/// verified FO-rewritable with Prop. 2 rewriting depth ≤ 2. Our searches
/// (all 6-node paths; random ditrees up to 11 nodes; two-branch
/// caterpillars up to 11 nodes) found no CQ with minimal depth exactly 2,
/// so the exact-depth aspect of Example 5 is a documented reconstruction
/// gap (EXPERIMENTS.md, E5); the dichotomy-side behaviour — Λ-shape, twins,
/// FO-rewritability, folding homs into all deeper cactuses — is reproduced
/// and tested.
pub fn q8() -> OneCq {
    OneCq::parse(
        "F(b), T(b), T(c), F(f), \
         R(a,b), R(a,c), R(b,f), R(c,d), R(d,e)",
    )
}

/// `D1` (Example 2): a data instance over `q1`'s vocabulary with two
/// `A`-nodes on which the certain answer to `(Δ_q1, G)` is ‘yes’ by case
/// distinction (every labelling of the `A`-nodes embeds the `F,F,T,T` path).
///
/// **Reconstruction.** The figure's node/edge identities are partially
/// illegible; this instance realises the same case split:
/// `f1 → f2 → a1 → a2 → t5 → t6` plus the chord `a1 → t6`, with
/// `F(f1), F(f2), A(a1), A(a2), T(t5), T(t6)`.
pub fn d1() -> Structure {
    st("F(f1), F(f2), A(a1), A(a2), T(t5), T(t6), \
         R(f1,f2), R(f2,a1), R(a1,a2), R(a2,t5), R(t5,t6), R(a1,t6)")
}

/// `D2` (Examples 2 and 3): the depth-1 cactus of `q2` obtained by budding
/// both solitary `T`s of the root segment — a data instance on which the
/// certain answer to `(Δ_q2, G)` (equivalently `(Π_q2, G)`) is ‘yes’.
pub fn d2() -> Structure {
    let q = q2_cq();
    let c = sirup_cactus::Cactus::root(&q).bud(0, 0).bud(0, 1);
    c.structure().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::cq::{solitary_f, solitary_t, twins};
    use sirup_core::shape::{dipath, DitreeView};

    #[test]
    fn q1_shape() {
        let q = q1();
        assert_eq!(q.node_count(), 4);
        assert!(dipath(&q).is_some());
        assert_eq!(solitary_f(&q).len(), 2);
        assert_eq!(solitary_t(&q).len(), 2);
        assert!(twins(&q).is_empty());
    }

    #[test]
    fn q2_q3_shapes() {
        for q in [q2(), q3()] {
            assert_eq!(q.node_count(), 3);
            assert!(dipath(&q).is_some());
            assert_eq!(solitary_f(&q).len(), 1);
            assert_eq!(solitary_t(&q).len(), 2);
        }
        // q2 uses S then R; q3 uses R twice.
        assert_eq!(q2().binary_preds().len(), 2);
        assert_eq!(q3().binary_preds().len(), 1);
    }

    #[test]
    fn q4_is_a_ditree_with_incomparable_pair() {
        let q = q4();
        let t = DitreeView::of(&q).expect("q4 is a ditree");
        let f = solitary_f(&q)[0];
        let tt = solitary_t(&q)[0];
        assert!(!t.comparable(f, tt));
        assert_eq!(t.distance(f, tt), 2);
    }

    #[test]
    fn q5_through_q8_are_branching_ditrees() {
        // Per p. 13 of the paper, q5–q8 contain only ≺-incomparable solitary
        // pairs, so none of them can be a directed path.
        for q in [q5(), q6(), q7(), q8()] {
            let s = q.structure();
            assert!(DitreeView::of(s).is_some());
            assert!(dipath(s).is_none());
            // Incomparability of all solitary pairs.
            let tv = DitreeView::of(s).unwrap();
            let f = solitary_f(s)[0];
            for &t in &solitary_t(s) {
                assert!(!tv.comparable(t, f));
            }
            // Minimality (required by Theorems 7/9/11).
            assert!(sirup_hom::is_minimal(s));
        }
    }

    #[test]
    fn spans() {
        assert_eq!(q2_cq().span(), 2);
        assert_eq!(q3_cq().span(), 2);
        assert_eq!(q4_cq().span(), 1);
        assert_eq!(q5().span(), 1);
        assert_eq!(q7().span(), 1);
        assert_eq!(q8().span(), 1);
    }

    #[test]
    fn d1_has_two_a_nodes() {
        let d = d1();
        assert_eq!(d.nodes_with_label(sirup_core::Pred::A).len(), 2);
        assert_eq!(d.edge_count(), 6);
    }

    #[test]
    fn d2_is_a_three_segment_cactus() {
        let d = d2();
        assert_eq!(d.nodes_with_label(sirup_core::Pred::A).len(), 2);
        assert_eq!(d.nodes_with_label(sirup_core::Pred::F).len(), 1);
        assert_eq!(d.nodes_with_label(sirup_core::Pred::T).len(), 4);
    }
}
