//! Seeded random generators for CQs and data instances.
//!
//! Used by property tests (agreement between deciders and brute force on
//! random corpora) and benchmarks (scaling in instance size).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirup_core::{Node, OneCq, Pred, Structure};

/// Parameters for random ditree CQ generation.
#[derive(Debug, Clone, Copy)]
pub struct DitreeCqParams {
    /// Number of nodes (≥ 2).
    pub nodes: usize,
    /// Probability that an internal node is an FT-twin.
    pub twin_prob: f64,
    /// Number of solitary `T`-nodes to place (span, for Λ-CQs).
    pub solitary_ts: usize,
    /// Use a second edge predicate `S` with this probability per edge.
    pub s_edge_prob: f64,
}

impl Default for DitreeCqParams {
    fn default() -> Self {
        DitreeCqParams {
            nodes: 6,
            twin_prob: 0.4,
            solitary_ts: 1,
            s_edge_prob: 0.0,
        }
    }
}

/// Generate a random ditree 1-CQ: a random rooted tree over `nodes` nodes
/// with one solitary `F`, `solitary_ts` solitary `T`s (all placed at
/// distinct non-root nodes, pairwise incomparable placement *not*
/// guaranteed), and twins sprinkled elsewhere.
///
/// Returns `None` if the label placement fails to produce a valid 1-CQ
/// (caller retries with the next seed).
pub fn random_ditree_cq(params: DitreeCqParams, seed: u64) -> Option<OneCq> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.nodes.max(2);
    let mut s = Structure::with_nodes(n);
    // Random recursive tree: parent of i is uniform over 0..i.
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        let pred = if rng.gen_bool(params.s_edge_prob) {
            Pred::S
        } else {
            Pred::R
        };
        s.add_edge(pred, Node(parent as u32), Node(i as u32));
    }
    // Choose distinct nodes for F and the solitary Ts (avoid the root for
    // variety; the root may still end up a twin).
    let mut pool: Vec<usize> = (1..n).collect();
    if pool.len() < 1 + params.solitary_ts {
        return None;
    }
    // Shuffle.
    for i in (1..pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        pool.swap(i, j);
    }
    let f_node = Node(pool[0] as u32);
    s.add_label(f_node, Pred::F);
    for &t in pool.iter().skip(1).take(params.solitary_ts) {
        s.add_label(Node(t as u32), Pred::T);
    }
    // Twins elsewhere.
    for i in 0..n {
        let v = Node(i as u32);
        if s.labels(v).is_empty() && rng.gen_bool(params.twin_prob) {
            s.add_label(v, Pred::F);
            s.add_label(v, Pred::T);
        }
    }
    OneCq::new(s).ok()
}

/// Generate a random path 1-CQ of `len` nodes over labels
/// (one solitary `F`, at least one solitary `T`, twins elsewhere with the
/// given probability), edges all `R`.
pub fn random_path_cq(len: usize, twin_prob: f64, seed: u64) -> Option<OneCq> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = len.max(3);
    let mut s = Structure::with_nodes(n);
    for i in 0..n - 1 {
        s.add_edge(Pred::R, Node(i as u32), Node(i as u32 + 1));
    }
    let f = rng.gen_range(0..n);
    let mut t = rng.gen_range(0..n);
    while t == f {
        t = rng.gen_range(0..n);
    }
    s.add_label(Node(f as u32), Pred::F);
    s.add_label(Node(t as u32), Pred::T);
    for i in 0..n {
        let v = Node(i as u32);
        if s.labels(v).is_empty() && rng.gen_bool(twin_prob) {
            s.add_label(v, Pred::F);
            s.add_label(v, Pred::T);
        }
    }
    OneCq::new(s).ok()
}

/// Generate a random data instance: `nodes` nodes, `edges` random `R`/`S`
/// edges, and random `F`/`T`/`A` labels with the given densities.
pub fn random_instance(
    nodes: usize,
    edges: usize,
    label_prob: f64,
    a_prob: f64,
    seed: u64,
) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Structure::with_nodes(nodes.max(1));
    let n = s.node_count();
    for _ in 0..edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let p = if rng.gen_bool(0.5) { Pred::R } else { Pred::S };
        s.add_edge(p, Node(u as u32), Node(v as u32));
    }
    for i in 0..n {
        let v = Node(i as u32);
        if rng.gen_bool(a_prob) {
            s.add_label(v, Pred::A);
        } else if rng.gen_bool(label_prob) {
            let p = if rng.gen_bool(0.5) { Pred::F } else { Pred::T };
            s.add_label(v, p);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::shape::DitreeView;

    #[test]
    fn ditree_cqs_are_valid() {
        let mut produced = 0;
        for seed in 0..40 {
            if let Some(q) = random_ditree_cq(DitreeCqParams::default(), seed) {
                produced += 1;
                assert!(DitreeView::of(q.structure()).is_some());
                assert_eq!(q.span(), 1);
            }
        }
        assert!(produced > 20, "generator should usually succeed");
    }

    #[test]
    fn seeded_determinism() {
        let a = random_instance(20, 40, 0.5, 0.3, 7);
        let b = random_instance(20, 40, 0.5, 0.3, 7);
        assert_eq!(a, b);
        let c = random_instance(20, 40, 0.5, 0.3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn path_cqs_are_paths() {
        for seed in 0..20 {
            if let Some(q) = random_path_cq(6, 0.5, seed) {
                assert!(sirup_core::shape::dipath(q.structure()).is_some());
            }
        }
    }

    #[test]
    fn span_parameter_respected() {
        let params = DitreeCqParams {
            nodes: 10,
            solitary_ts: 3,
            ..Default::default()
        };
        for seed in 0..20 {
            if let Some(q) = random_ditree_cq(params, seed) {
                assert_eq!(q.span(), 3);
            }
        }
    }
}
