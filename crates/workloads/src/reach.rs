//! Graph reachability reductions (Theorem 7, Theorem 11, Appendix G).
//!
//! Given a (di)graph `G` with designated nodes `s, t` and a CQ `q` with a
//! chosen solitary pair `(t-node, f-node)`, the instance `D_G` replaces each
//! edge `(u, v)` by a fresh copy `q_e` of `q` in which the `t`-node is
//! renamed to `u` (its `T` label becoming `A`) and the `f`-node to `v`
//! (its `F` label becoming `A`); finally `T(s)` and `F(t)` are added.
//! The paper proves: `s →_G t` iff the certain answer to `(Δ_q, G)` over
//! `D_G` is ‘yes’ (for the CQ classes of Theorem 7 / Appendix G).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirup_core::builder::GlueBuilder;
use sirup_core::{Node, Pred, Structure};

/// A simple digraph on `0..n`.
#[derive(Debug, Clone)]
pub struct Digraph {
    /// Number of vertices.
    pub n: usize,
    /// Edge list.
    pub edges: Vec<(usize, usize)>,
}

impl Digraph {
    /// Random dag: edges `(i, j)` with `i < j` kept with probability `p`.
    pub fn random_dag(n: usize, p: f64, seed: u64) -> Digraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen_bool(p) {
                    edges.push((i, j));
                }
            }
        }
        Digraph { n, edges }
    }

    /// A directed path `0 → 1 → … → n−1`.
    pub fn path(n: usize) -> Digraph {
        Digraph {
            n,
            edges: (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
        }
    }

    /// Is `t` reachable from `s` by a directed path?
    pub fn reachable(&self, s: usize, t: usize) -> bool {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            if u == t {
                return true;
            }
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Is `t` connected to `s` by an undirected path?
    pub fn connected(&self, s: usize, t: usize) -> bool {
        let sym = Digraph {
            n: self.n,
            edges: self
                .edges
                .iter()
                .flat_map(|&(u, v)| [(u, v), (v, u)])
                .collect(),
        };
        sym.reachable(s, t)
    }
}

/// Build `D_G` for the **directed** reduction of Theorem 7: each edge
/// `(u, v)` becomes a copy of `q` with its `t_node` glued to `u` and its
/// `f_node` glued to `v` (both relabelled `A`), plus `T(s)` and `F(t)`.
pub fn dag_reduction_instance(
    q: &Structure,
    t_node: Node,
    f_node: Node,
    g: &Digraph,
    s: usize,
    t: usize,
) -> Structure {
    build_instance(q, t_node, f_node, &g.edges, g.n, s, t)
}

/// Build `D_G` for the **undirected** reduction of Appendix G (L-hardness
/// for quasi-symmetric CQs): identical construction — the symmetry of `q`
/// is what makes undirected reachability the right source problem.
pub fn undirected_reduction_instance(
    q: &Structure,
    t_node: Node,
    f_node: Node,
    g: &Digraph,
    s: usize,
    t: usize,
) -> Structure {
    build_instance(q, t_node, f_node, &g.edges, g.n, s, t)
}

fn build_instance(
    q: &Structure,
    t_node: Node,
    f_node: Node,
    edges: &[(usize, usize)],
    n: usize,
    s: usize,
    t: usize,
) -> Structure {
    // Copy of q with the endpoint labels replaced by A.
    let mut part = q.clone();
    part.remove_label(t_node, Pred::T);
    part.add_label(t_node, Pred::A);
    part.remove_label(f_node, Pred::F);
    part.add_label(f_node, Pred::A);

    let mut b = GlueBuilder::new();
    // Graph vertices first (stable ids 0..n after finish, since they are
    // the first nodes added and never merged into each other).
    let verts: Vec<Node> = (0..n).map(|_| b.add_fresh()).collect();
    for &(u, v) in edges {
        let off = b.add(&part);
        b.glue(Node(off + t_node.0), verts[u]);
        b.glue(Node(off + f_node.0), verts[v]);
    }
    b.label(verts[s], Pred::T);
    b.label(verts[t], Pred::F);
    let (d, _) = b.finish();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{q3, q4};
    use sirup_core::cq::{solitary_f, solitary_t};

    #[test]
    fn digraph_reachability() {
        let g = Digraph::path(5);
        assert!(g.reachable(0, 4));
        assert!(!g.reachable(4, 0));
        assert!(g.connected(4, 0));
        let empty = Digraph {
            n: 3,
            edges: vec![],
        };
        assert!(!empty.reachable(0, 2));
        assert!(empty.reachable(1, 1));
    }

    #[test]
    fn random_dag_is_acyclic_and_seeded() {
        let g1 = Digraph::random_dag(10, 0.3, 42);
        let g2 = Digraph::random_dag(10, 0.3, 42);
        assert_eq!(g1.edges, g2.edges);
        assert!(g1.edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn instance_respects_vertex_count() {
        // q3 = T(x) → T(y) → F(z); pick the comparable solitary pair (y, z)
        // (adjacent, no solitary node between them).
        let q = q3();
        let ts = solitary_t(&q);
        let f = solitary_f(&q)[0];
        let g = Digraph::path(4);
        let d = dag_reduction_instance(&q, ts[1], f, &g, 0, 3);
        // Per edge: q3 has 3 nodes, 2 glued to vertices ⇒ 1 fresh node.
        assert_eq!(d.node_count(), 4 + g.edges.len());
        // s and t carry their extra labels.
        assert!(d.has_label(Node(0), Pred::T));
        assert!(d.has_label(Node(3), Pred::F));
        // Interior vertices are A-nodes.
        assert!(d.has_label(Node(1), Pred::A));
        assert!(d.has_label(Node(2), Pred::A));
    }

    #[test]
    fn q4_instance_glues_at_incomparable_pair() {
        let q = q4();
        let f = solitary_f(&q)[0];
        let t = solitary_t(&q)[0];
        let g = Digraph::path(3);
        let d = dag_reduction_instance(&q, t, f, &g, 0, 2);
        // q4 has 3 nodes; each copy contributes 1 fresh middle node.
        assert_eq!(d.node_count(), 3 + 2);
        assert_eq!(d.edge_count(), 2 * 2);
    }
}
