//! Traffic generation and the workload file format for the query service.
//!
//! A [`TrafficSpec`] is a self-contained workload: a catalog of named data
//! instances plus a stream of certain-answer requests against them, each
//! tagged with a virtual arrival offset. `sirup-server` replays specs either
//! **closed-loop** (the whole stream is submitted as one batch and drained
//! at full speed — a throughput measurement) or **open-loop** (submission is
//! paced by the arrival offsets — a latency-under-load measurement).
//!
//! [`mixed_traffic`] emits seeded random specs mixing the paper's named
//! programs (`q2`–`q5`, `q7`, `q8`, and `q1`–`q4` as disjunctive sirups)
//! with random ditree CQs over random instances — the standing workload for
//! the service-layer benchmarks and differential tests.
//!
//! The text format (one item per line, `#` comments) round-trips through
//! [`render_workload`] / [`parse_workload`]:
//!
//! ```text
//! # sirup workload v1
//! instance d1 = F(f1), R(f1,a1), A(a1), R(a1,t1), T(t1)
//! request pi d1 @0 = F(x), R(x,y), T(y)
//! request sigma d1 @180 = F(x), R(y,x), R(y,z), T(z)
//! request delta d1 @420 = T(x), R(x,y), F(y)
//! request delta+ d1 @500 = T(x), R(x,y), F(y)
//! ```

use crate::paper;
use crate::random::{random_ditree_cq, random_instance, DitreeCqParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirup_core::parse::parse_structure;
use sirup_core::{OneCq, Structure};
use std::fmt::Write as _;

/// The certain-answer query kinds the service answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Boolean certain answer to `(Π_q, G)` — needs a 1-CQ.
    PiGoal,
    /// Unary certain answers to `(Σ_q, P)` — needs a 1-CQ.
    SigmaAnswers,
    /// Boolean certain answer to the disjunctive `(Δ_q, G)`.
    Delta,
    /// Boolean certain answer to `(Δ⁺_q, G)` (with disjointness (3)).
    DeltaPlus,
}

impl QueryKind {
    /// The format keyword (`pi`, `sigma`, `delta`, `delta+`).
    pub fn keyword(self) -> &'static str {
        match self {
            QueryKind::PiGoal => "pi",
            QueryKind::SigmaAnswers => "sigma",
            QueryKind::Delta => "delta",
            QueryKind::DeltaPlus => "delta+",
        }
    }

    /// Parse a format keyword.
    pub fn from_keyword(kw: &str) -> Option<QueryKind> {
        match kw {
            "pi" => Some(QueryKind::PiGoal),
            "sigma" => Some(QueryKind::SigmaAnswers),
            "delta" => Some(QueryKind::Delta),
            "delta+" => Some(QueryKind::DeltaPlus),
            _ => None,
        }
    }
}

/// One request of a workload: a query kind, the CQ defining the program,
/// the name of the target instance, and a virtual arrival offset.
#[derive(Debug, Clone)]
pub struct TrafficRequest {
    /// Which certain-answer query to run.
    pub kind: QueryKind,
    /// The CQ `q` (validated as a 1-CQ for `pi`/`sigma` requests).
    pub cq: Structure,
    /// Name of the target instance in the spec's catalog.
    pub instance: String,
    /// Virtual arrival time in microseconds from stream start (open-loop
    /// pacing; ignored by closed-loop replay).
    pub arrival_us: u64,
}

/// A workload: named instances plus a request stream sorted by arrival.
#[derive(Debug, Clone, Default)]
pub struct TrafficSpec {
    /// The instance catalog content, in definition order.
    pub instances: Vec<(String, Structure)>,
    /// The request stream.
    pub requests: Vec<TrafficRequest>,
}

/// Parameters for [`mixed_traffic`].
#[derive(Debug, Clone, Copy)]
pub struct TrafficParams {
    /// Number of random instances to generate (besides `d1`/`d2`).
    pub instances: usize,
    /// Nodes per random instance.
    pub instance_nodes: usize,
    /// Edges per random instance.
    pub instance_edges: usize,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean virtual inter-arrival gap in microseconds.
    pub mean_gap_us: u64,
    /// Number of random ditree CQs to add to the program pool.
    pub random_cqs: usize,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            instances: 4,
            instance_nodes: 24,
            instance_edges: 40,
            requests: 200,
            mean_gap_us: 150,
            random_cqs: 3,
        }
    }
}

/// Generate a seeded mixed workload over the paper's named programs plus
/// random ditree CQs and random instances. Deterministic in `(params, seed)`.
pub fn mixed_traffic(params: TrafficParams, seed: u64) -> TrafficSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = TrafficSpec::default();
    spec.instances.push(("d1".to_owned(), paper::d1()));
    spec.instances.push(("d2".to_owned(), paper::d2()));
    for i in 0..params.instances {
        // Moderate A-density keeps the DPLL labelling search tractable.
        let s = random_instance(
            params.instance_nodes,
            params.instance_edges,
            0.45,
            0.25,
            seed.wrapping_add(i as u64).wrapping_mul(0x9e37),
        );
        spec.instances.push((format!("rand{i}"), s));
    }

    // Program pools. 1-CQs serve every kind; q1 (two solitary Fs) only the
    // disjunctive kinds.
    let mut one_cqs: Vec<OneCq> = vec![
        paper::q2_cq(),
        paper::q3_cq(),
        paper::q4_cq(),
        paper::q5(),
        paper::q7(),
        paper::q8(),
    ];
    let mut tries = 0u64;
    while one_cqs.len() < 6 + params.random_cqs && tries < 200 {
        let cq_seed = seed.wrapping_mul(31).wrapping_add(tries);
        if let Some(q) = random_ditree_cq(DitreeCqParams::default(), cq_seed) {
            one_cqs.push(q);
        }
        tries += 1;
    }
    let delta_only: Vec<Structure> = vec![paper::q1()];

    let mut arrival = 0u64;
    for _ in 0..params.requests {
        arrival += rng.gen_range(0..=2 * params.mean_gap_us);
        let kind = match rng.gen_range(0..100u32) {
            0..=29 => QueryKind::PiGoal,
            30..=54 => QueryKind::SigmaAnswers,
            55..=89 => QueryKind::Delta,
            _ => QueryKind::DeltaPlus,
        };
        let cq = match kind {
            QueryKind::PiGoal | QueryKind::SigmaAnswers => {
                one_cqs[rng.gen_range(0..one_cqs.len())].structure().clone()
            }
            QueryKind::Delta | QueryKind::DeltaPlus => {
                // Disjunctive kinds draw from both pools.
                let total = one_cqs.len() + delta_only.len();
                let i = rng.gen_range(0..total);
                if i < one_cqs.len() {
                    one_cqs[i].structure().clone()
                } else {
                    delta_only[i - one_cqs.len()].clone()
                }
            }
        };
        let instance = spec.instances[rng.gen_range(0..spec.instances.len())]
            .0
            .clone();
        spec.requests.push(TrafficRequest {
            kind,
            cq,
            instance,
            arrival_us: arrival,
        });
    }
    spec
}

/// Render a spec in the workload text format.
pub fn render_workload(spec: &TrafficSpec) -> String {
    let mut out = String::from("# sirup workload v1\n");
    for (name, s) in &spec.instances {
        writeln!(out, "instance {name} = {s}").unwrap();
    }
    for r in &spec.requests {
        writeln!(
            out,
            "request {} {} @{} = {}",
            r.kind.keyword(),
            r.instance,
            r.arrival_us,
            r.cq
        )
        .unwrap();
    }
    out
}

/// Parse the workload text format. Validates that every request targets a
/// defined instance and that `pi`/`sigma` CQs are 1-CQs.
pub fn parse_workload(text: &str) -> Result<TrafficSpec, String> {
    let mut spec = TrafficSpec::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, body) = line
            .split_once('=')
            .ok_or_else(|| at("expected `... = <atoms>`".into()))?;
        let atoms = parse_structure(body).map_err(|e| at(e.to_string()))?.0;
        let fields: Vec<&str> = head.split_whitespace().collect();
        match fields.as_slice() {
            ["instance", name] => {
                if spec.instances.iter().any(|(n, _)| n == name) {
                    return Err(at(format!("instance {name} defined twice")));
                }
                spec.instances.push(((*name).to_owned(), atoms));
            }
            ["request", kw, instance, arrival] => {
                let kind = QueryKind::from_keyword(kw)
                    .ok_or_else(|| at(format!("unknown query kind {kw:?}")))?;
                let arrival_us = arrival
                    .strip_prefix('@')
                    .and_then(|a| a.parse().ok())
                    .ok_or_else(|| at(format!("bad arrival {arrival:?} (expected @<µs>)")))?;
                if !spec.instances.iter().any(|(n, _)| n == instance) {
                    return Err(at(format!(
                        "request targets undefined instance {instance:?}"
                    )));
                }
                if matches!(kind, QueryKind::PiGoal | QueryKind::SigmaAnswers) {
                    OneCq::new(atoms.clone())
                        .map_err(|e| at(format!("{kw} request needs a 1-CQ: {e}")))?;
                }
                spec.requests.push(TrafficRequest {
                    kind,
                    cq: atoms,
                    instance: (*instance).to_owned(),
                    arrival_us,
                });
            }
            _ => return Err(at(format!("unrecognised item {head:?}"))),
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_traffic_is_deterministic_and_well_formed() {
        let a = mixed_traffic(TrafficParams::default(), 7);
        let b = mixed_traffic(TrafficParams::default(), 7);
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests.len(), TrafficParams::default().requests);
        for (ra, rb) in a.requests.iter().zip(&b.requests) {
            assert_eq!(ra.kind, rb.kind);
            assert_eq!(ra.cq, rb.cq);
            assert_eq!(ra.instance, rb.instance);
            assert_eq!(ra.arrival_us, rb.arrival_us);
        }
        // Arrivals are nondecreasing; every request targets a known instance.
        let mut last = 0;
        for r in &a.requests {
            assert!(r.arrival_us >= last);
            last = r.arrival_us;
            assert!(a.instances.iter().any(|(n, _)| *n == r.instance));
            if matches!(r.kind, QueryKind::PiGoal | QueryKind::SigmaAnswers) {
                assert!(OneCq::new(r.cq.clone()).is_ok());
            }
        }
        // The mix covers all four kinds at default size.
        for kind in [
            QueryKind::PiGoal,
            QueryKind::SigmaAnswers,
            QueryKind::Delta,
            QueryKind::DeltaPlus,
        ] {
            assert!(
                a.requests.iter().any(|r| r.kind == kind),
                "{kind:?} missing"
            );
        }
    }

    #[test]
    fn workload_format_round_trips() {
        let spec = mixed_traffic(
            TrafficParams {
                instances: 2,
                requests: 25,
                ..Default::default()
            },
            3,
        );
        let text = render_workload(&spec);
        let back = parse_workload(&text).expect("rendered workload parses");
        assert_eq!(back.instances.len(), spec.instances.len());
        assert_eq!(back.requests.len(), spec.requests.len());
        // Node identity is not preserved (rendering names nodes by their
        // atoms, and isolated unlabeled nodes are dropped), but the atom
        // sets — the semantics — are.
        for ((na, sa), (nb, sb)) in spec.instances.iter().zip(&back.instances) {
            assert_eq!(na, nb);
            assert_eq!(sa.size(), sb.size());
        }
        for (ra, rb) in spec.requests.iter().zip(&back.requests) {
            assert_eq!(ra.kind, rb.kind);
            assert_eq!(ra.instance, rb.instance);
            assert_eq!(ra.arrival_us, rb.arrival_us);
            assert_eq!(ra.cq.size(), rb.cq.size());
        }
    }

    #[test]
    fn parse_rejects_malformed_workloads() {
        assert!(parse_workload("garbage").is_err());
        assert!(parse_workload("instance a = F(x\n").is_err());
        // Undefined instance.
        assert!(parse_workload("request pi nope @0 = F(x), R(x,y), T(y)").is_err());
        // pi needs a 1-CQ (two solitary Fs here).
        let two_f = "instance d = T(u)\nrequest pi d @0 = F(x), R(x,y), F(y)";
        assert!(parse_workload(two_f).is_err());
        // delta accepts it.
        let delta = "instance d = T(u)\nrequest delta d @0 = F(x), R(x,y), F(y)";
        assert!(parse_workload(delta).is_ok());
        // Duplicate instance.
        assert!(parse_workload("instance d = T(u)\ninstance d = T(v)").is_err());
        // Bad arrival.
        assert!(parse_workload("instance d = T(u)\nrequest pi d 0 = F(x), R(x,y), T(y)").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n  # indented comment\ninstance d = T(u)\n";
        let spec = parse_workload(text).unwrap();
        assert_eq!(spec.instances.len(), 1);
        assert!(spec.requests.is_empty());
    }
}
