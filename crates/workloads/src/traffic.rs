//! Traffic generation and the workload file format for the query service.
//!
//! A [`TrafficSpec`] is a self-contained workload: a catalog of named data
//! instances plus a stream of requests against them, each tagged with a
//! virtual arrival offset. A request either asks a certain-answer **query**
//! or applies a **mutation** (a batch of fact-level inserts/retracts) — the
//! read/write mix that makes the service a live system. `sirup-server`
//! replays specs either **closed-loop** (the whole stream is submitted as
//! one batch and drained at full speed — a throughput measurement) or
//! **open-loop** (submission is paced by the arrival offsets — a
//! latency-under-load measurement).
//!
//! [`mixed_traffic`] emits seeded random specs mixing the paper's named
//! programs (`q2`–`q5`, `q7`, `q8`, and `q1`–`q4` as disjunctive sirups)
//! with random ditree CQs over random instances — the standing workload for
//! the service-layer benchmarks and differential tests. With a positive
//! [`TrafficParams::mutation_ratio`] the stream interleaves mutation
//! requests whose ops are generated against an evolving shadow copy of each
//! instance (so retracts hit facts that exist); `hot_weight` skews traffic
//! towards the first instance, modelling a hot shard.
//!
//! The text format (one item per line, `#` comments) round-trips through
//! [`render_workload`] / [`parse_workload`]:
//!
//! ```text
//! # sirup workload v1
//! instance d1 = F(f1), R(f1,a1), A(a1), R(a1,t1), T(t1)
//! request pi d1 @0 = F(x), R(x,y), T(y)
//! request sigma d1 @180 = F(x), R(y,x), R(y,z), T(z)
//! request delta d1 @420 = T(x), R(x,y), F(y)
//! request mutate d1 @500 = +T(a1), -R(f1,a1)
//! ```
//!
//! Mutation ops name nodes by the identifiers of the instance definition
//! line (`Display` renders them as `n<i>`); names not bound by the instance
//! allocate fresh nodes, which is how inserts grow an instance.

use crate::paper;
use crate::random::{random_ditree_cq, random_instance, DitreeCqParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sirup_core::delta::parse_op;
use sirup_core::parse::parse_structure;
use sirup_core::{FactOp, Node, OneCq, Pred, Structure};
use std::fmt::Write as _;

/// The certain-answer query kinds the service answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Boolean certain answer to `(Π_q, G)` — needs a 1-CQ.
    PiGoal,
    /// Unary certain answers to `(Σ_q, P)` — needs a 1-CQ.
    SigmaAnswers,
    /// Boolean certain answer to the disjunctive `(Δ_q, G)`.
    Delta,
    /// Boolean certain answer to `(Δ⁺_q, G)` (with disjointness (3)).
    DeltaPlus,
}

impl QueryKind {
    /// The format keyword (`pi`, `sigma`, `delta`, `delta+`).
    pub fn keyword(self) -> &'static str {
        match self {
            QueryKind::PiGoal => "pi",
            QueryKind::SigmaAnswers => "sigma",
            QueryKind::Delta => "delta",
            QueryKind::DeltaPlus => "delta+",
        }
    }

    /// Parse a format keyword.
    pub fn from_keyword(kw: &str) -> Option<QueryKind> {
        match kw {
            "pi" => Some(QueryKind::PiGoal),
            "sigma" => Some(QueryKind::SigmaAnswers),
            "delta" => Some(QueryKind::Delta),
            "delta+" => Some(QueryKind::DeltaPlus),
            _ => None,
        }
    }
}

/// What a traffic request does to its target instance.
#[derive(Debug, Clone)]
pub enum TrafficAction {
    /// Ask a certain-answer query defined by a CQ.
    Query {
        /// Which certain-answer query to run.
        kind: QueryKind,
        /// The CQ `q` (validated as a 1-CQ for `pi`/`sigma` requests).
        cq: Structure,
    },
    /// Apply a batch of fact-level mutations, in order.
    Mutate {
        /// The inserts/retracts.
        ops: Vec<FactOp>,
    },
}

/// One request of a workload: an action against a named instance at a
/// virtual arrival offset.
#[derive(Debug, Clone)]
pub struct TrafficRequest {
    /// What to do.
    pub action: TrafficAction,
    /// Name of the target instance in the spec's catalog.
    pub instance: String,
    /// Virtual arrival time in microseconds from stream start (open-loop
    /// pacing; ignored by closed-loop replay).
    pub arrival_us: u64,
}

impl TrafficRequest {
    /// The format keyword of this request's action (`pi`, …, `mutate`).
    pub fn keyword(&self) -> &'static str {
        match &self.action {
            TrafficAction::Query { kind, .. } => kind.keyword(),
            TrafficAction::Mutate { .. } => "mutate",
        }
    }

    /// Is this a mutation?
    pub fn is_mutation(&self) -> bool {
        matches!(self.action, TrafficAction::Mutate { .. })
    }
}

/// A workload: named instances plus a request stream sorted by arrival.
#[derive(Debug, Clone, Default)]
pub struct TrafficSpec {
    /// The instance catalog content, in definition order.
    pub instances: Vec<(String, Structure)>,
    /// The request stream.
    pub requests: Vec<TrafficRequest>,
}

impl TrafficSpec {
    /// The catalog after applying every mutation of the stream in order:
    /// the reference final state for differential checks against a replay.
    pub fn final_instances(&self) -> Vec<(String, Structure)> {
        let mut out = self.instances.clone();
        for r in &self.requests {
            if let TrafficAction::Mutate { ops } = &r.action {
                if let Some((_, s)) = out.iter_mut().find(|(n, _)| *n == r.instance) {
                    s.apply_all(ops);
                }
            }
        }
        out
    }

    /// Total number of mutation ops across the stream.
    pub fn mutation_op_count(&self) -> usize {
        self.requests
            .iter()
            .map(|r| match &r.action {
                TrafficAction::Mutate { ops } => ops.len(),
                TrafficAction::Query { .. } => 0,
            })
            .sum()
    }
}

/// Parameters for [`mixed_traffic`].
#[derive(Debug, Clone, Copy)]
pub struct TrafficParams {
    /// Number of random instances to generate (besides `d1`/`d2`).
    pub instances: usize,
    /// Nodes per random instance.
    pub instance_nodes: usize,
    /// Edges per random instance.
    pub instance_edges: usize,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean virtual inter-arrival gap in microseconds.
    pub mean_gap_us: u64,
    /// Number of random ditree CQs to add to the program pool.
    pub random_cqs: usize,
    /// Fraction of requests that are mutations (0.0 — the default — keeps
    /// the stream read-only).
    pub mutation_ratio: f64,
    /// Probability that a request targets the first (hot) instance instead
    /// of a uniformly random one (0.0 = uniform).
    pub hot_weight: f64,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            instances: 4,
            instance_nodes: 24,
            instance_edges: 40,
            requests: 200,
            mean_gap_us: 150,
            random_cqs: 3,
            mutation_ratio: 0.0,
            hot_weight: 0.0,
        }
    }
}

/// One random mutation op against the current shadow state `s`: ~half
/// retracts of *existing* facts, ~half inserts (labels, edges, and the
/// occasional fresh node). Returns `None` when the shadow is empty and a
/// retract was drawn.
fn random_op(s: &Structure, rng: &mut StdRng) -> Option<FactOp> {
    let unary = [Pred::F, Pred::T, Pred::A];
    let binary = [Pred::R, Pred::S];
    if rng.gen_bool(0.5) {
        // Retract a uniformly random existing atom.
        let labels = s.label_count();
        let total = labels + s.edge_count();
        if total == 0 {
            return None;
        }
        let k = rng.gen_range(0..total);
        if k < labels {
            let (p, v) = s.unary_atoms().nth(k)?;
            Some(FactOp::RemoveLabel(p, v))
        } else {
            let (p, u, v) = s.edges().nth(k - labels)?;
            Some(FactOp::RemoveEdge(p, u, v))
        }
    } else {
        let grow = rng.gen_bool(0.08);
        let n = s.node_count() as u32;
        let fresh = Node(n); // one past the range: grows on insert
        let pick = |rng: &mut StdRng| Node(rng.gen_range(0..n.max(1)));
        if rng.gen_bool(0.5) {
            let v = if grow { fresh } else { pick(rng) };
            Some(FactOp::AddLabel(unary[rng.gen_range(0..3usize)], v))
        } else {
            let u = if grow { fresh } else { pick(rng) };
            let v = pick(rng);
            Some(FactOp::AddEdge(binary[rng.gen_range(0..2usize)], u, v))
        }
    }
}

/// Generate a seeded mixed workload over the paper's named programs plus
/// random ditree CQs and random instances, optionally interleaving mutation
/// requests. Deterministic in `(params, seed)`.
pub fn mixed_traffic(params: TrafficParams, seed: u64) -> TrafficSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = TrafficSpec::default();
    spec.instances.push(("d1".to_owned(), paper::d1()));
    spec.instances.push(("d2".to_owned(), paper::d2()));
    for i in 0..params.instances {
        // Moderate A-density keeps the DPLL labelling search tractable.
        let s = random_instance(
            params.instance_nodes,
            params.instance_edges,
            0.45,
            0.25,
            seed.wrapping_add(i as u64).wrapping_mul(0x9e37),
        );
        spec.instances.push((format!("rand{i}"), s));
    }
    // Shadow copies track the effect of generated mutations, so retracts
    // target facts that actually exist at their point in the stream.
    let mut shadows: Vec<Structure> = spec.instances.iter().map(|(_, s)| s.clone()).collect();

    // Program pools. 1-CQs serve every kind; q1 (two solitary Fs) only the
    // disjunctive kinds.
    let mut one_cqs: Vec<OneCq> = vec![
        paper::q2_cq(),
        paper::q3_cq(),
        paper::q4_cq(),
        paper::q5(),
        paper::q7(),
        paper::q8(),
    ];
    let mut tries = 0u64;
    while one_cqs.len() < 6 + params.random_cqs && tries < 200 {
        let cq_seed = seed.wrapping_mul(31).wrapping_add(tries);
        if let Some(q) = random_ditree_cq(DitreeCqParams::default(), cq_seed) {
            one_cqs.push(q);
        }
        tries += 1;
    }
    let delta_only: Vec<Structure> = vec![paper::q1()];

    let mut arrival = 0u64;
    for _ in 0..params.requests {
        arrival += rng.gen_range(0..=2 * params.mean_gap_us);
        let inst_idx = if params.hot_weight > 0.0 && rng.gen_bool(params.hot_weight.min(1.0)) {
            0
        } else {
            rng.gen_range(0..spec.instances.len())
        };
        let instance = spec.instances[inst_idx].0.clone();

        if params.mutation_ratio > 0.0 && rng.gen_bool(params.mutation_ratio.min(1.0)) {
            let batch = rng.gen_range(1..=3usize);
            let mut ops = Vec::with_capacity(batch);
            for _ in 0..batch {
                if let Some(op) = random_op(&shadows[inst_idx], &mut rng) {
                    ops.push(op);
                }
            }
            if !ops.is_empty() {
                shadows[inst_idx].apply_all(&ops);
                spec.requests.push(TrafficRequest {
                    action: TrafficAction::Mutate { ops },
                    instance,
                    arrival_us: arrival,
                });
                continue;
            }
        }

        let kind = match rng.gen_range(0..100u32) {
            0..=29 => QueryKind::PiGoal,
            30..=54 => QueryKind::SigmaAnswers,
            55..=89 => QueryKind::Delta,
            _ => QueryKind::DeltaPlus,
        };
        let cq = match kind {
            QueryKind::PiGoal | QueryKind::SigmaAnswers => {
                one_cqs[rng.gen_range(0..one_cqs.len())].structure().clone()
            }
            QueryKind::Delta | QueryKind::DeltaPlus => {
                // Disjunctive kinds draw from both pools.
                let total = one_cqs.len() + delta_only.len();
                let i = rng.gen_range(0..total);
                if i < one_cqs.len() {
                    one_cqs[i].structure().clone()
                } else {
                    delta_only[i - one_cqs.len()].clone()
                }
            }
        };
        spec.requests.push(TrafficRequest {
            action: TrafficAction::Query { kind, cq },
            instance,
            arrival_us: arrival,
        });
    }
    spec
}

/// A **scaling** workload: one large generated instance (the `nodes` knob)
/// under a stream of heavy queries — the semi-naive fixpoint, the Σ answer
/// sweep, a rewriting-served sweep, and the DPLL labelling search all hit
/// the same big instance, so intra-request parallelism (not request mixing)
/// dominates the runtime. `sirupctl serve --scaling --nodes N --emit`
/// renders it (the bundled `workloads/large.sirupload` is this spec at its
/// committed size), and the `parallel_scaling` bench measures the same
/// shape directly. Deterministic in `(nodes, requests, seed)`.
pub fn scaling_traffic(nodes: usize, requests: usize, seed: u64) -> TrafficSpec {
    let nodes = nodes.max(8);
    let big = random_instance(nodes, nodes * 2, 0.45, 0.25, seed);
    let mut spec = TrafficSpec {
        instances: vec![("big".to_owned(), big)],
        requests: Vec::new(),
    };
    let heavy: [(QueryKind, Structure); 4] = [
        (QueryKind::PiGoal, paper::q4_cq().structure().clone()),
        (QueryKind::SigmaAnswers, paper::q4_cq().structure().clone()),
        (QueryKind::SigmaAnswers, paper::q7().structure().clone()),
        (QueryKind::Delta, paper::q2()),
    ];
    for i in 0..requests {
        let (kind, cq) = &heavy[i % heavy.len()];
        spec.requests.push(TrafficRequest {
            action: TrafficAction::Query {
                kind: *kind,
                cq: cq.clone(),
            },
            instance: "big".to_owned(),
            arrival_us: (i as u64) * 50,
        });
    }
    spec
}

/// A **phase-shifting** workload for the adaptive controller: one hot
/// instance under three consecutive traffic phases —
///
/// 1. **write-heavy**: mutations dominate with occasional interleaved
///    reads, so an adaptive server keeps evaluating from scratch (a
///    maintained materialisation would churn on every write);
/// 2. **read-heavy**: an uninterrupted run of unbounded semi-naive reads
///    (`q4` as Π/Σ) plus disjunctive DPLL reads (`q2` as Δ/Δ⁺), the shape
///    that clears the promotion threshold and feeds re-planning samples;
/// 3. **write-heavy again**: the demotion phase — writes dominate once
///    more, so promoted programs detach their materialisations.
///
/// `sirupctl serve --phases --emit` renders it (the bundled
/// `workloads/phases.sirupload` is this spec at its committed size), and
/// the CI adaptive smoke replays it with `--adaptive` asserting the
/// promotion/re-plan/shed counters move. Deterministic in
/// `(per_phase, seed)`; arrivals are strictly nondecreasing.
pub fn phase_traffic(per_phase: usize, seed: u64) -> TrafficSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_phase = per_phase.max(4);
    let hot = random_instance(48, 96, 0.45, 0.25, seed);
    let mut spec = TrafficSpec {
        instances: vec![("hot".to_owned(), hot)],
        requests: Vec::new(),
    };
    let mut shadow = spec.instances[0].1.clone();
    let reads: [(QueryKind, Structure); 4] = [
        (QueryKind::PiGoal, paper::q4_cq().structure().clone()),
        (QueryKind::SigmaAnswers, paper::q4_cq().structure().clone()),
        (QueryKind::Delta, paper::q2()),
        (QueryKind::DeltaPlus, paper::q2()),
    ];
    let mut arrival = 0u64;
    for phase in 0..3usize {
        let write_heavy = phase != 1;
        for i in 0..per_phase {
            arrival += 40;
            // Write phases: 3 mutations to every read. Read phase: pure
            // reads cycling the pool, so each program's run is unbroken.
            if write_heavy && i % 4 != 0 {
                let batch = rng.gen_range(1..=2usize);
                let mut ops = Vec::with_capacity(batch);
                for _ in 0..batch {
                    if let Some(op) = random_op(&shadow, &mut rng) {
                        ops.push(op);
                    }
                }
                if !ops.is_empty() {
                    shadow.apply_all(&ops);
                    spec.requests.push(TrafficRequest {
                        action: TrafficAction::Mutate { ops },
                        instance: "hot".to_owned(),
                        arrival_us: arrival,
                    });
                    continue;
                }
            }
            let (kind, cq) = &reads[i % reads.len()];
            spec.requests.push(TrafficRequest {
                action: TrafficAction::Query {
                    kind: *kind,
                    cq: cq.clone(),
                },
                instance: "hot".to_owned(),
                arrival_us: arrival,
            });
        }
    }
    spec
}

/// Render a spec in the workload text format.
pub fn render_workload(spec: &TrafficSpec) -> String {
    let mut out = String::from("# sirup workload v1\n");
    for (name, s) in &spec.instances {
        writeln!(out, "instance {name} = {s}").unwrap();
    }
    for r in &spec.requests {
        match &r.action {
            TrafficAction::Query { cq, .. } => writeln!(
                out,
                "request {} {} @{} = {}",
                r.keyword(),
                r.instance,
                r.arrival_us,
                cq
            )
            .unwrap(),
            TrafficAction::Mutate { ops } => {
                let rendered: Vec<String> = ops.iter().map(|op| op.to_string()).collect();
                writeln!(
                    out,
                    "request mutate {} @{} = {}",
                    r.instance,
                    r.arrival_us,
                    rendered.join(", ")
                )
                .unwrap()
            }
        }
    }
    out
}

/// Split an op list on top-level commas (commas inside `(...)` separate
/// atom arguments, not ops). Shared with the wire protocol's `mutate` and
/// `query` verbs, which carry the same comma-separated vocabulary.
pub fn split_ops(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

/// Parse the workload text format. Validates that every request targets a
/// defined instance and that `pi`/`sigma` CQs are 1-CQs. Mutation ops
/// resolve node names through the target instance's definition (fresh
/// names allocate fresh nodes, consistently across the file).
pub fn parse_workload(text: &str) -> Result<TrafficSpec, String> {
    let mut spec = TrafficSpec::default();
    // Per instance: the node-name binding of its definition line, plus the
    // next free index for names first seen in mutation ops.
    let mut bindings: Vec<(std::collections::BTreeMap<String, Node>, u32)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, body) = line
            .split_once('=')
            .ok_or_else(|| at("expected `... = <atoms>`".into()))?;
        let fields: Vec<&str> = head.split_whitespace().collect();
        match fields.as_slice() {
            ["instance", name] => {
                if spec.instances.iter().any(|(n, _)| n == name) {
                    return Err(at(format!("instance {name} defined twice")));
                }
                let (atoms, names) = parse_structure(body).map_err(|e| at(e.to_string()))?;
                bindings.push((names, atoms.node_count() as u32));
                spec.instances.push(((*name).to_owned(), atoms));
            }
            ["request", "mutate", instance, arrival] => {
                let arrival_us = parse_arrival(arrival)
                    .ok_or_else(|| at(format!("bad arrival {arrival:?} (expected @<µs>)")))?;
                let idx = spec
                    .instances
                    .iter()
                    .position(|(n, _)| n == instance)
                    .ok_or_else(|| {
                        at(format!("request targets undefined instance {instance:?}"))
                    })?;
                let (names, next) = &mut bindings[idx];
                let mut ops = Vec::new();
                for part in split_ops(body) {
                    if part.trim().is_empty() {
                        continue;
                    }
                    let op = parse_op(part, |name| {
                        *names.entry(name.to_owned()).or_insert_with(|| {
                            let v = Node(*next);
                            *next += 1;
                            v
                        })
                    })
                    .map_err(&at)?;
                    ops.push(op);
                }
                if ops.is_empty() {
                    return Err(at("mutate request has no ops".into()));
                }
                spec.requests.push(TrafficRequest {
                    action: TrafficAction::Mutate { ops },
                    instance: (*instance).to_owned(),
                    arrival_us,
                });
            }
            ["request", kw, instance, arrival] => {
                let kind = QueryKind::from_keyword(kw)
                    .ok_or_else(|| at(format!("unknown query kind {kw:?}")))?;
                let arrival_us = parse_arrival(arrival)
                    .ok_or_else(|| at(format!("bad arrival {arrival:?} (expected @<µs>)")))?;
                let atoms = parse_structure(body).map_err(|e| at(e.to_string()))?.0;
                if !spec.instances.iter().any(|(n, _)| n == instance) {
                    return Err(at(format!(
                        "request targets undefined instance {instance:?}"
                    )));
                }
                if matches!(kind, QueryKind::PiGoal | QueryKind::SigmaAnswers) {
                    OneCq::new(atoms.clone())
                        .map_err(|e| at(format!("{kw} request needs a 1-CQ: {e}")))?;
                }
                spec.requests.push(TrafficRequest {
                    action: TrafficAction::Query { kind, cq: atoms },
                    instance: (*instance).to_owned(),
                    arrival_us,
                });
            }
            _ => return Err(at(format!("unrecognised item {head:?}"))),
        }
    }
    Ok(spec)
}

fn parse_arrival(field: &str) -> Option<u64> {
    field.strip_prefix('@').and_then(|a| a.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_kind(r: &TrafficRequest) -> Option<QueryKind> {
        match &r.action {
            TrafficAction::Query { kind, .. } => Some(*kind),
            TrafficAction::Mutate { .. } => None,
        }
    }

    #[test]
    fn mixed_traffic_is_deterministic_and_well_formed() {
        let a = mixed_traffic(TrafficParams::default(), 7);
        let b = mixed_traffic(TrafficParams::default(), 7);
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.requests.len(), TrafficParams::default().requests);
        for (ra, rb) in a.requests.iter().zip(&b.requests) {
            assert_eq!(ra.keyword(), rb.keyword());
            assert_eq!(ra.instance, rb.instance);
            assert_eq!(ra.arrival_us, rb.arrival_us);
        }
        // Arrivals are nondecreasing; every request targets a known instance.
        let mut last = 0;
        for r in &a.requests {
            assert!(r.arrival_us >= last);
            last = r.arrival_us;
            assert!(a.instances.iter().any(|(n, _)| *n == r.instance));
            if let TrafficAction::Query { kind, cq } = &r.action {
                if matches!(kind, QueryKind::PiGoal | QueryKind::SigmaAnswers) {
                    assert!(OneCq::new(cq.clone()).is_ok());
                }
            }
        }
        // The default mix is read-only and covers all four kinds.
        assert_eq!(a.mutation_op_count(), 0);
        for kind in [
            QueryKind::PiGoal,
            QueryKind::SigmaAnswers,
            QueryKind::Delta,
            QueryKind::DeltaPlus,
        ] {
            assert!(
                a.requests.iter().any(|r| query_kind(r) == Some(kind)),
                "{kind:?} missing"
            );
        }
    }

    #[test]
    fn mutation_traffic_mixes_and_skews() {
        let params = TrafficParams {
            requests: 300,
            mutation_ratio: 0.3,
            hot_weight: 0.6,
            ..Default::default()
        };
        let spec = mixed_traffic(params, 9);
        let mutations = spec.requests.iter().filter(|r| r.is_mutation()).count();
        assert!(
            (50..200).contains(&mutations),
            "expected ~30% mutations, got {mutations}/300"
        );
        assert!(spec.mutation_op_count() >= mutations);
        // Hot skew: d1 sees far more than its uniform share (1/6).
        let hot = spec.requests.iter().filter(|r| r.instance == "d1").count();
        assert!(hot > 300 / 3, "hot instance got {hot}/300");
        // Deterministic in the seed.
        let again = mixed_traffic(params, 9);
        assert_eq!(render_workload(&spec), render_workload(&again));
        // Retract ops target facts that existed at their stream position:
        // replaying every mutation on the instances applies ≥ 90% of ops
        // (duplicate inserts of an already-present atom may no-op).
        let mut applied = 0usize;
        let mut instances = spec.instances.clone();
        for r in &spec.requests {
            if let TrafficAction::Mutate { ops } = &r.action {
                let (_, s) = instances
                    .iter_mut()
                    .find(|(n, _)| *n == r.instance)
                    .unwrap();
                applied += s.apply_all(ops);
            }
        }
        assert!(
            applied * 10 >= spec.mutation_op_count() * 9,
            "only {applied}/{} ops applied",
            spec.mutation_op_count()
        );
    }

    #[test]
    fn scaling_traffic_is_deterministic_and_heavy() {
        let a = scaling_traffic(64, 12, 5);
        let b = scaling_traffic(64, 12, 5);
        assert_eq!(render_workload(&a), render_workload(&b));
        assert_eq!(a.instances.len(), 1);
        assert_eq!(a.instances[0].0, "big");
        assert_eq!(a.instances[0].1.node_count(), 64);
        assert_eq!(a.requests.len(), 12);
        assert!(a.requests.iter().all(|r| r.instance == "big"));
        assert_eq!(a.mutation_op_count(), 0);
        // All four heavy kinds cycle through the stream.
        for kind in [QueryKind::PiGoal, QueryKind::SigmaAnswers, QueryKind::Delta] {
            assert!(a.requests.iter().any(|r| query_kind(r) == Some(kind)));
        }
        // And the rendering round-trips through the file format.
        assert!(parse_workload(&render_workload(&a)).is_ok());
    }

    #[test]
    fn phase_traffic_is_deterministic_and_phase_shaped() {
        let a = phase_traffic(16, 11);
        let b = phase_traffic(16, 11);
        assert_eq!(render_workload(&a), render_workload(&b));
        assert_eq!(a.instances.len(), 1);
        assert_eq!(a.instances[0].0, "hot");
        assert_eq!(a.requests.len(), 48);
        assert!(a.requests.iter().all(|r| r.instance == "hot"));
        // Arrivals are nondecreasing (open-loop pacing needs this).
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
        // The middle third is pure reads; the outer thirds are
        // write-dominated.
        let thirds: Vec<&[TrafficRequest]> = a.requests.chunks(16).collect();
        let writes = |reqs: &[TrafficRequest]| reqs.iter().filter(|r| r.is_mutation()).count();
        assert_eq!(writes(thirds[1]), 0, "read phase must be pure reads");
        assert!(writes(thirds[0]) > 8, "first phase must be write-heavy");
        assert!(writes(thirds[2]) > 8, "last phase must be write-heavy");
        // The read phase exercises both the semi-naive kinds (promotion)
        // and the disjunctive kinds (re-planning).
        for kind in [
            QueryKind::PiGoal,
            QueryKind::SigmaAnswers,
            QueryKind::Delta,
            QueryKind::DeltaPlus,
        ] {
            assert!(thirds[1].iter().any(|r| query_kind(r) == Some(kind)));
        }
        // And the rendering round-trips through the file format.
        assert!(parse_workload(&render_workload(&a)).is_ok());
    }

    #[test]
    fn workload_format_round_trips() {
        let spec = mixed_traffic(
            TrafficParams {
                instances: 2,
                requests: 60,
                mutation_ratio: 0.25,
                ..Default::default()
            },
            3,
        );
        let text = render_workload(&spec);
        let back = parse_workload(&text).expect("rendered workload parses");
        assert_eq!(back.instances.len(), spec.instances.len());
        assert_eq!(back.requests.len(), spec.requests.len());
        // Node identity is not preserved (rendering names nodes by their
        // atoms, and isolated unlabeled nodes are dropped), but the atom
        // sets — the semantics — are.
        for ((na, sa), (nb, sb)) in spec.instances.iter().zip(&back.instances) {
            assert_eq!(na, nb);
            assert_eq!(sa.size(), sb.size());
        }
        for (ra, rb) in spec.requests.iter().zip(&back.requests) {
            assert_eq!(ra.keyword(), rb.keyword());
            assert_eq!(ra.instance, rb.instance);
            assert_eq!(ra.arrival_us, rb.arrival_us);
            match (&ra.action, &rb.action) {
                (TrafficAction::Query { cq: a, .. }, TrafficAction::Query { cq: b, .. }) => {
                    assert_eq!(a.size(), b.size())
                }
                (TrafficAction::Mutate { ops: a }, TrafficAction::Mutate { ops: b }) => {
                    assert_eq!(a.len(), b.len())
                }
                _ => panic!("action kind flipped in round trip"),
            }
        }
        // The *semantics* round-trip too: applying all mutations on both
        // sides leaves catalogs of identical sizes.
        for ((_, a), (_, b)) in spec.final_instances().iter().zip(&back.final_instances()) {
            assert_eq!(a.size(), b.size());
        }
    }

    #[test]
    fn mutate_ops_resolve_instance_node_names() {
        let text = "\
instance d = F(f), R(f,t), T(t)
request mutate d @10 = -T(t), +T(g), +R(t,g)
request mutate d @20 = -R(f,t), +A(g)
";
        let spec = parse_workload(text).unwrap();
        assert_eq!(spec.requests.len(), 2);
        let finals = spec.final_instances();
        let d = &finals[0].1;
        // `g` allocated one fresh node, consistently across both lines.
        assert_eq!(d.node_count(), 3);
        assert_eq!(d.nodes_with_label(Pred::T).len(), 1);
        assert_eq!(d.nodes_with_label(Pred::A).len(), 1);
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn parse_rejects_malformed_workloads() {
        assert!(parse_workload("garbage").is_err());
        assert!(parse_workload("instance a = F(x\n").is_err());
        // Undefined instance.
        assert!(parse_workload("request pi nope @0 = F(x), R(x,y), T(y)").is_err());
        assert!(parse_workload("request mutate nope @0 = +T(x)").is_err());
        // pi needs a 1-CQ (two solitary Fs here).
        let two_f = "instance d = T(u)\nrequest pi d @0 = F(x), R(x,y), F(y)";
        assert!(parse_workload(two_f).is_err());
        // delta accepts it.
        let delta = "instance d = T(u)\nrequest delta d @0 = F(x), R(x,y), F(y)";
        assert!(parse_workload(delta).is_ok());
        // Duplicate instance.
        assert!(parse_workload("instance d = T(u)\ninstance d = T(v)").is_err());
        // Bad arrival.
        assert!(parse_workload("instance d = T(u)\nrequest pi d 0 = F(x), R(x,y), T(y)").is_err());
        // Malformed / empty mutation ops.
        assert!(parse_workload("instance d = T(u)\nrequest mutate d @0 = T(u)").is_err());
        assert!(parse_workload("instance d = T(u)\nrequest mutate d @0 = ").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n  # indented comment\ninstance d = T(u)\n";
        let spec = parse_workload(text).unwrap();
        assert_eq!(spec.instances.len(), 1);
        assert!(spec.requests.is_empty());
    }
}
