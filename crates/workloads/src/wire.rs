//! A minimal client for the sirup wire protocol (`sirup-server::wire`).
//!
//! The protocol is deliberately small: length-prefixed, CRC-checked frames
//! ([`sirup_core::frame`]) carrying UTF-8 request/reply text. This module
//! gives workloads (and the `sirupctl` CLI) everything needed to drive a
//! daemon without depending on the server crate: a blocking [`WireClient`],
//! renderers that turn workload objects into request payloads, and
//! [`replay_over_wire`], which replays a [`TrafficSpec`] over a live
//! connection and returns the raw reply lines (the differential oracle for
//! the crash-recovery check compares those against a second replay after a
//! `kill -9` + restart).
//!
//! Only `std::net` and `sirup-core::frame` are used — the client compiles
//! wherever the workloads crate does.

use crate::traffic::{TrafficAction, TrafficSpec};
use sirup_core::frame;
use sirup_core::{FactOp, Structure};
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A blocking connection to a sirup daemon.
///
/// One frame out, one frame in: [`WireClient::request`] is the whole
/// protocol for everything except `tail`, where pushed `op ...` frames
/// arrive between replies and are read with [`WireClient::next_frame`].
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireClient { stream })
    }

    /// Connect to `addr`, retrying until `deadline` elapses — for racing a
    /// daemon that is still binding its listener (child-process tests).
    pub fn connect_retry(addr: &str, deadline: Duration) -> io::Result<WireClient> {
        let start = Instant::now();
        loop {
            match WireClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Send one request payload (no reply expected yet).
    pub fn send(&mut self, payload: &str) -> io::Result<()> {
        frame::write_frame(&mut self.stream, payload.as_bytes())?;
        self.stream.flush()
    }

    /// Read the next frame as UTF-8 text; `Ok(None)` on clean EOF.
    pub fn next_frame(&mut self) -> io::Result<Option<String>> {
        match frame::read_frame(&mut self.stream)? {
            Some(payload) => String::from_utf8(payload)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Ok(None),
        }
    }

    /// One request/reply round trip.
    pub fn request(&mut self, payload: &str) -> io::Result<String> {
        self.send(payload)?;
        self.next_frame()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the reply",
            )
        })
    }

    /// Set the read timeout for pushed frames (`None` blocks forever).
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }
}

/// Render a `load` request for `data` under `name`: the declared node
/// count keeps trailing isolated nodes, the body lists every atom as an
/// insert op in canonical `n<i>` names.
pub fn load_request(name: &str, data: &Structure) -> String {
    let mut out = format!("load {name} {}", data.node_count());
    for op in data.to_ops() {
        out.push('\n');
        write!(out, "{op}").unwrap();
    }
    out
}

/// Render a `query` request (`query <kind> <inst> = <atoms>`).
pub fn query_request(kind: &str, instance: &str, cq: &Structure) -> String {
    format!("query {kind} {instance} = {cq}")
}

/// Render a `mutate` request (`mutate <inst> = <ops>`).
pub fn mutate_request(instance: &str, ops: &[FactOp]) -> String {
    let rendered: Vec<String> = ops.iter().map(|op| op.to_string()).collect();
    format!("mutate {instance} = {}", rendered.join(","))
}

/// Replay `spec` over a fresh connection to `addr`: load every instance,
/// then send the request stream in order, collecting one reply line per
/// request (loads are checked, not collected). Any `error ...` reply to a
/// load aborts; request-stream errors are collected verbatim so the caller
/// can diff them.
pub fn replay_over_wire(spec: &TrafficSpec, addr: &str) -> io::Result<Vec<String>> {
    let mut client = WireClient::connect(addr)?;
    for (name, data) in &spec.instances {
        let reply = client.request(&load_request(name, data))?;
        if !reply.starts_with("ok ") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("load {name} failed: {reply}"),
            ));
        }
    }
    let mut replies = Vec::with_capacity(spec.requests.len());
    for r in &spec.requests {
        let payload = match &r.action {
            TrafficAction::Query { kind, cq } => query_request(kind.keyword(), &r.instance, cq),
            TrafficAction::Mutate { ops } => mutate_request(&r.instance, ops),
        };
        replies.push(client.request(&payload)?);
    }
    Ok(replies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirup_core::parse::st;
    use sirup_core::{Node, Pred};

    #[test]
    fn request_renderers_use_canonical_names() {
        let data = st("F(a), R(a,b), T(b)");
        assert_eq!(
            load_request("d", &data),
            "load d 2\n+F(n0)\n+T(n1)\n+R(n0,n1)"
        );
        assert_eq!(
            query_request("pi", "d", &st("F(x), R(x,y)")),
            "query pi d = F(n0), R(n0,n1)"
        );
        assert_eq!(
            mutate_request(
                "d",
                &[
                    FactOp::AddLabel(Pred::T, Node(4)),
                    FactOp::RemoveEdge(Pred::R, Node(0), Node(1)),
                ]
            ),
            "mutate d = +T(n4),-R(n0,n1)"
        );
    }

    #[test]
    fn load_request_preserves_isolated_nodes() {
        let mut data = Structure::with_nodes(5);
        data.apply_all(&[FactOp::AddLabel(Pred::F, Node(1))]);
        assert_eq!(load_request("iso", &data), "load iso 5\n+F(n1)");
    }
}
