//! Inside the 2ExpTime-hardness proof (§3.3): simulate an alternating
//! Turing machine, encode a computation as the paper's 01-tree `β_T`
//! (Fig. 1), check the per-node correctness predicates of Claim 4.1, and
//! show how the Boolean circuit families of §3.4 detect a corrupted
//! computation.
//!
//! Run with `cargo run --example atm_trace`.

use monadic_sirups::atm::correct;
use monadic_sirups::atm::machine::Atm;
use monadic_sirups::atm::trees::{attach_gamma, build_beta, Encoding};
use monadic_sirups::circuits::families;

fn main() {
    let m = Atm::first_symbol_machine();
    println!("machine: first_symbol_machine (accepts w iff w starts with 1)");
    for w in [vec![1usize], vec![0usize]] {
        println!("  accepts {w:?} (depth 8): {}", m.accepts(&w, 8));
    }

    // Encode the computation space on w = [0] (rejecting) as a 01-tree.
    let w = [0usize];
    let enc = Encoding::for_atm(&m);
    println!(
        "\nencoding: d = {} (configurations are 2^d = {}-bit strings)",
        enc.d(),
        enc.total_bits()
    );
    let beta = build_beta(&m, &enc, &w, 0, 4);
    println!(
        "β_T: {} tree nodes, {} main nodes (configuration roots)",
        beta.tree.len(),
        beta.mains.len()
    );

    // Claim 4.1, healthy direction: every main node is correct.
    let ok = beta.mains.iter().all(|&(v, _, _)| {
        correct::properly_branching(&beta.tree, v, enc.d()) || beta.tree.child_count(v) == 0
    });
    println!("all main nodes properly branching: {ok}");
    let rejects = beta
        .mains
        .iter()
        .filter(|&&(v, _, _)| correct::is_reject_main(&beta.tree, v, &m, &enc))
        .count();
    println!("reject-configuration mains: {rejects}");

    // Corrupt the tree: pretend the successors of the root configuration
    // are the initial configuration again — an impossible δ-step.
    let mut bad = build_beta(&m, &enc, &w, 0, 4);
    let (root_main, c, _) = bad.mains[0].clone();
    let (m0, m1) = correct::successor_mains(&bad.tree, root_main);
    for nm in [m0, m1].into_iter().flatten() {
        attach_gamma(&mut bad.tree, nm, &enc.encode(&c, false));
    }
    let computing = correct::properly_computing(&bad.tree, root_main, &m, &enc);
    println!("\nafter corruption: properly computing = {computing}");

    // The Step circuit family (§3.4.3) detects it: some gathered input
    // satisfies the "inconsistent with δ" formula.
    let step = families::step(&m, &enc);
    println!(
        "Step formula: {} gates over {} inputs",
        step.formula.gate_count(),
        step.inputs.len()
    );
    println!(
        "Step fires at the corrupted node: {}",
        step.satisfied_somewhere_at(&bad.tree, root_main)
    );
}
