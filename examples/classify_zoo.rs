//! The Example 1 “zoo”: classify the paper's CQs with the §4 deciders and
//! re-derive the complexity ladder AC0 ⊆ L ⊆ NL ⊆ P ⊆ coNP.
//!
//! Run with `cargo run --example classify_zoo`.

use monadic_sirups::classifier::{
    classify_delta_plus, classify_trichotomy, lambda_fo_rewritable, nl_hardness_condition,
    DitreeCqAnalysis,
};
use monadic_sirups::core::Structure;
use monadic_sirups::workloads as paper;

fn row(name: &str, q: &Structure, paper_class: &str) {
    let tri = classify_trichotomy(q);
    let analysis = DitreeCqAnalysis::new(q);
    let (t7, c8) = match &analysis {
        Some(a) => (
            format!("{:?}", nl_hardness_condition(a)),
            format!("{:?}", classify_delta_plus(a)),
        ),
        None => ("n/a (not a ditree)".into(), "n/a".into()),
    };
    println!("{name:4} | paper: {paper_class:14} | Thm 11: {tri:?}");
    println!("     |   Thm 7: {t7} | Cor 8 (Δ⁺): {c8}");
}

fn main() {
    println!("== Example 1 zoo ==");
    row("q1", &paper::q1(), "coNP-complete");
    row("q2", &paper::q2(), "P-complete");
    row("q3", &paper::q3(), "NL-complete");
    row("q4", &paper::q4(), "L-complete");
    row("q5", paper::q5().structure(), "AC0 (FO)");

    println!("\n== Λ-CQ dichotomy (Theorem 9) ==");
    for (name, q) in [
        ("q4", paper::q4_cq()),
        ("q5", paper::q5()),
        ("q6", paper::q6()),
        ("q7", paper::q7()),
        ("q8", paper::q8()),
    ] {
        println!("{name}: {:?}", lambda_fo_rewritable(&q));
    }
}
