//! The Theorem 3 construction at toy scale: build the 2ExpTime-hardness
//! 1-CQ for small alternating Turing machines and report its structure.
//!
//! Run with `cargo run --example hardness_construction`.

use monadic_sirups::atm::machine::Atm;
use monadic_sirups::atm::trees::Encoding;
use monadic_sirups::core::cq::{solitary_f, solitary_t, twins};
use monadic_sirups::core::shape::is_dag;
use monadic_sirups::reduction::{build_query, measure};

fn report(name: &str, m: &Atm, w: &[usize]) {
    let enc = Encoding::for_atm(m);
    let hq = build_query(m, w);
    let s = hq.q.structure();
    println!("== {name}, |w| = {} ==", w.len());
    println!("  accepts(w): {}", m.accepts(w, 16));
    println!(
        "  encoding: 2^{} bits per configuration (d = {})",
        enc.index_levels,
        enc.d()
    );
    println!("  gadgets: {}", hq.gadgets.len());
    println!(
        "  q: {} nodes, {} atoms, dag = {}, solitary F = {}, solitary T = {}, FT-twins = {}",
        s.node_count(),
        s.size(),
        is_dag(s),
        solitary_f(s).len(),
        solitary_t(s).len(),
        twins(s).len()
    );
    // The (foc) argument: the F-node has successors, twins do not.
    let f = solitary_f(s)[0];
    let twin_out: usize = twins(s).iter().map(|&t| s.out_degree(t)).sum();
    println!(
        "  (foc) structure: out-degree(F) = {}, Σ out-degree(twins) = {twin_out}",
        s.out_degree(f)
    );
}

fn main() {
    report(
        "M_reject (rejects everything)",
        &Atm::trivially_rejecting(),
        &[0],
    );
    report(
        "M_accept (accepts everything)",
        &Atm::trivially_accepting(),
        &[0],
    );
    report(
        "M_first (accepts iff w starts with 1)",
        &Atm::first_symbol_machine(),
        &[1, 0],
    );

    // Size scaling: the construction is polynomial in the machine/input.
    println!("\n== size scaling ==");
    for (label, m, w) in [
        ("|w|=1", Atm::first_symbol_machine(), vec![1]),
        ("|w|=2", Atm::first_symbol_machine(), vec![1, 0]),
    ] {
        let r = measure(&m, &w);
        println!(
            "  {label}: nodes = {}, atoms = {}, gadgets = {}",
            r.nodes, r.atoms, r.gadgets
        );
    }
}
