//! The OBDA story of §1, end to end: take an FO-rewritable d-sirup,
//! certify boundedness (Prop. 2), extract the UCQ rewriting, minimise it
//! (Chandra–Merlin containment), translate it to first-order logic and to
//! non-recursive SQL, and verify it against the datalog engine on random
//! instances — the full "answer a recursive query with a standard RDBMS"
//! pipeline.
//!
//! Run with `cargo run --example obda_pipeline`.

use monadic_sirups::cactus::{find_bound, pi_rewriting, BoundSearch, Boundedness};
use monadic_sirups::core::program::pi_q;
use monadic_sirups::engine::containment::{minimise_ucq, ucq_equivalent};
use monadic_sirups::engine::eval::certain_answer_goal;
use monadic_sirups::fo::sql::render_schema;
use monadic_sirups::fo::{render_sql, ucq_to_fo, verify_boolean_rewriting, SqlDialect};
use monadic_sirups::workloads::q5;
use monadic_sirups::workloads::random::random_instance;

fn main() {
    // q5 (Example 1/4): FO-rewritable, certified bounded at depth 1.
    let q = q5();
    println!("q5 = {}", q.structure());
    let verdict = find_bound(
        &q,
        BoundSearch {
            max_d: 2,
            horizon: 5,
            cap: 10_000,
            sigma: false,
        },
    );
    let Boundedness::BoundedEvidence { d, horizon } = verdict else {
        panic!("q5 must be bounded: {verdict:?}");
    };
    println!("\nProp. 2 evidence: bounded with d = {d} (horizon {horizon})");

    // Extract and minimise the UCQ rewriting.
    let raw = pi_rewriting(&q, d, 10_000).expect("cap not hit");
    let ucq = minimise_ucq(&raw);
    assert!(ucq_equivalent(&raw, &ucq));
    println!(
        "rewriting: {} disjuncts ({} before minimisation), {} atoms",
        ucq.len(),
        raw.len(),
        ucq.size()
    );

    // First-order form.
    let phi = ucq_to_fo(&ucq);
    println!(
        "\nFO form (size {}, quantifier rank {}):\n{phi}",
        phi.size(),
        phi.quantifier_rank()
    );

    // SQL form.
    println!("\nschema:\n{}", render_schema(&ucq));
    println!("query:\n{}", render_sql(&ucq, SqlDialect::Ansi));

    // Verify against the recursive engine on 40 random instances.
    let pi = pi_q(&q);
    let instances: Vec<_> = (0..40)
        .map(|s| random_instance(7, 12, 0.6, 0.4, 500 + s))
        .collect();
    match verify_boolean_rewriting(&ucq, |i| certain_answer_goal(&pi, i), instances.iter()) {
        Ok(n) => println!("\nverified: rewriting ≡ engine on {n} random instances"),
        Err(d) => panic!("rewriting disagreed: {d}"),
    }
}
