//! Quickstart: define a 1-CQ, build its programs, evaluate certain answers,
//! and test boundedness via the Prop. 2 criterion.
//!
//! Run with `cargo run --example quickstart`.

use monadic_sirups::cactus::{find_bound, is_focused_up_to, BoundSearch};
use monadic_sirups::core::parse::st;
use monadic_sirups::core::program::{pi_q, sigma_q, DSirup};
use monadic_sirups::core::OneCq;
use monadic_sirups::engine::disjunctive::certain_answer_dsirup;
use monadic_sirups::engine::eval::certain_answer_goal;

fn main() {
    // The paper's q4 (Example 1): F(x), R(y,x), R(y,z), T(z).
    let q = OneCq::parse("F(x), R(y,x), R(y,z), T(z)");
    println!("q4 = {}", q.structure());
    println!("span (solitary Ts) = {}", q.span());

    // Its programs: the datalog Π_q, the sirup Σ_q, the d-sirup Δ_q.
    let pi = pi_q(&q);
    let sigma = sigma_q(&q);
    println!("\nΠ_q rules:");
    for r in &pi.rules {
        println!("  {r:?}");
    }
    println!("Σ_q is a monadic sirup: {}", sigma.is_monadic_sirup());

    // Evaluate over a small instance with one A-node.
    let d = st("F(f), R(m1,f), R(m1,a), A(a), R(m2,a), R(m2,t), T(t)");
    println!("\ndata D = {d}");
    println!(
        "Π_q certain answer over D: {}",
        certain_answer_goal(&pi, &d)
    );
    println!(
        "Δ_q certain answer over D: {}",
        certain_answer_dsirup(&DSirup::new(q.structure().clone()), &d)
    );

    // Boundedness (Prop. 2, finite horizon): q4 is unbounded — its
    // expansions grow without folding back.
    let verdict = find_bound(
        &q,
        BoundSearch {
            max_d: 2,
            horizon: 5,
            cap: 10_000,
            sigma: false,
        },
    );
    println!("\nProp. 2 verdict for (Π_q4, G): {verdict:?}");
    println!(
        "q4 focused (up to depth 2): {:?}",
        is_focused_up_to(&q, 2, 10_000)
    );

    // Contrast: the paper's q5 (Example 4) is bounded with rewriting depth 1.
    let q5 = monadic_sirups::workloads::q5();
    let verdict5 = find_bound(
        &q5,
        BoundSearch {
            max_d: 2,
            horizon: 5,
            cap: 10_000,
            sigma: false,
        },
    );
    println!("Prop. 2 verdict for (Π_q5, G): {verdict5:?}");
}
