//! The Theorem 7 reduction as an “oracle”: answer graph reachability by
//! evaluating a d-sirup over the instance `D_G`, and cross-check against a
//! direct graph search — the paper's NL-hardness reduction, executed.
//!
//! Run with `cargo run --example reachability_oracle`.

use monadic_sirups::classifier::theorem7::reduction_pair;
use monadic_sirups::classifier::DitreeCqAnalysis;
use monadic_sirups::core::program::DSirup;
use monadic_sirups::engine::disjunctive::certain_answer_dsirup;
use monadic_sirups::workloads::q3;
use monadic_sirups::workloads::reach::{dag_reduction_instance, Digraph};

fn main() {
    // q3 (Example 1, NL-complete) satisfies Theorem 7 (i): its solitary
    // pair is ≺-comparable.
    let q = q3();
    let a = DitreeCqAnalysis::new(&q).expect("q3 is a ditree");
    let (t, f) = reduction_pair(&a).expect("Theorem 7 applies to q3");
    println!("gluing pair for q3: t = {t:?}, f = {f:?}");

    let mut agree = 0;
    let mut total = 0;
    for seed in 0..8 {
        let g = Digraph::random_dag(7, 0.25, seed);
        for (s, tt) in [(0usize, 6usize), (1, 5), (2, 6)] {
            let d = dag_reduction_instance(&q, t, f, &g, s, tt);
            let via_sirup = certain_answer_dsirup(&DSirup::new(q.clone()), &d);
            let direct = g.reachable(s, tt);
            total += 1;
            if via_sirup == direct {
                agree += 1;
            }
            println!(
                "seed {seed}: {s} →? {tt}: sirup = {via_sirup}, graph = {direct}  ({} nodes, {} atoms)",
                d.node_count(),
                d.size()
            );
        }
    }
    println!("\nagreement: {agree}/{total}");
    assert_eq!(agree, total, "Theorem 7 biconditional must hold");
}
