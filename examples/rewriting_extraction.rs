//! Extract and validate FO-rewritings per the Prop. 2 proof: for bounded
//! queries the depth-≤d cactus disjunction *is* the rewriting; for
//! unbounded ones every finite depth has a failure witness. Also shows the
//! Π/Σ gap of Example 4 (q6): the Boolean query rewrites, the unary sirup
//! does not.
//!
//! Run with `cargo run --example rewriting_extraction`.

use monadic_sirups::cactus::enumerate::full_cactus;
use monadic_sirups::cactus::{pi_rewriting, sigma_rewriting};
use monadic_sirups::core::program::pi_q;
use monadic_sirups::core::OneCq;
use monadic_sirups::engine::eval::certain_answer_goal;
use monadic_sirups::workloads as paper;

fn main() {
    // q5 is bounded with depth 1: the rewriting is C0 ∨ C1.
    let q5 = paper::q5();
    let r = pi_rewriting(&q5, 1, 1000).unwrap();
    println!(
        "q5 Π-rewriting: {} disjuncts, {} atoms total",
        r.len(),
        r.size()
    );
    let s = sigma_rewriting(&q5, 1, 1000).unwrap();
    println!("q5 Σ-rewriting: {} disjuncts (incl. T(r))", s.len());

    // Validate against the engine on all cactuses up to depth 4.
    let pi = pi_q(&q5);
    let (cactuses, _) = monadic_sirups::cactus::enumerate_cactuses(&q5, 4, 10_000);
    let mut agree = 0;
    for c in &cactuses {
        let lhs = certain_answer_goal(&pi, c.structure());
        let rhs = r.eval_boolean(c.structure());
        assert_eq!(lhs, rhs);
        agree += 1;
    }
    println!("validated on {agree} cactuses: engine ≡ rewriting");

    // q4 is unbounded: the depth-d candidate misses C_{d+2}.
    let q4 = OneCq::parse("F(x), R(y,x), R(y,z), T(z)");
    for d in 0..3 {
        let cand = pi_rewriting(&q4, d, 1000).unwrap();
        let deep = full_cactus(&q4, d + 2);
        let engine_says = certain_answer_goal(&pi_q(&q4), deep.structure());
        let rewriting_says = cand.eval_boolean(deep.structure());
        println!(
            "q4 depth-{d} candidate on C_{}: engine = {engine_says}, candidate = {rewriting_says}",
            d + 2
        );
        assert!(engine_says && !rewriting_says);
    }
    println!("q4: every finite depth has a failure witness — unbounded, as proved.");
}
