#!/usr/bin/env bash
# Bench-regression smoke: run the criterion-shim benches in quick mode and
# gate on two checks —
#
#  1. absolute: every *named hot-path point* must stay within
#     BENCH_CHECK_FACTOR (default 2.0) of the mean committed in the
#     corresponding BENCH_*.json (set the factor higher on noisy shared
#     runners, lower for local pre-commit runs);
#  2. relative (machine-independent): single-fact incremental maintenance
#     must stay ≥ 5x faster per op than from-scratch re-evaluation on the
#     fixpoint-shaped ladder — the acceptance bar of the incremental
#     subsystem, measured within the fresh run so it cannot be fooled by a
#     uniformly faster or slower machine.
#
# Usage: scripts/bench_check.sh
#   env: BENCH_CHECK_FACTOR=2.0  CRITERION_SHIM_MEASURE_MS=25
set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${BENCH_CHECK_FACTOR:-2.0}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

export CRITERION_SHIM_MEASURE_MS="${CRITERION_SHIM_MEASURE_MS:-25}"
export CRITERION_SHIM_JSON="$OUT"

cargo bench -p sirup-bench \
  --bench hom_plan \
  --bench server_throughput \
  --bench engine_incremental \
  --bench server_mutation

python3 - "$OUT" "$FACTOR" <<'EOF'
import json, sys

fresh_path, factor = sys.argv[1], float(sys.argv[2])
fresh = {}
for line in open(fresh_path):
    line = line.strip()
    if line:
        p = json.loads(line)
        fresh[p["id"]] = p["mean_ns"]

# The named hot-path points, per committed baseline file.
WATCH = {
    "BENCH_hom.json": [
        "hom_plan/planned_exists/4",
        "hom_plan/planned_pinned_sweep",
        "hom_plan/planned_enumerate",
    ],
    "BENCH_server.json": [
        "server/submit_warm_96req/4",
        "server/replay_closed_96req_4t",
    ],
    "BENCH_incremental.json": [
        "incremental/maintain_local_pair/24",
        "incremental/maintain_cascade_pair/24",
        "server_mutation/mutation_submit_32req/4",
        "server_mutation/replay_mixed_mutations_4t",
    ],
}

failures = []
print(f"\nbench_check: factor {factor}x vs committed means")
for path, ids in WATCH.items():
    committed = {r["id"]: r["mean_ns"] for r in json.load(open(path))["results"]}
    for pid in ids:
        if pid not in committed:
            failures.append(f"{pid}: missing from {path}")
            continue
        if pid not in fresh:
            failures.append(f"{pid}: not produced by this run")
            continue
        ratio = fresh[pid] / committed[pid]
        verdict = "ok" if ratio <= factor else "REGRESSION"
        print(f"  {verdict:>10}  {pid}: {fresh[pid]:,.0f} ns vs {committed[pid]:,.0f} ns ({ratio:.2f}x)")
        if ratio > factor:
            failures.append(f"{pid}: {ratio:.2f}x over the committed mean")

# Machine-independent acceptance bar: per-op maintenance (the pair point
# holds two ops) at least 5x below from-scratch on the same run.
for layers in ("8", "24"):
    scratch = fresh.get(f"incremental/from_scratch/{layers}")
    pair = fresh.get(f"incremental/maintain_local_pair/{layers}")
    if scratch is None or pair is None:
        failures.append(f"incremental points for {layers} layers missing")
        continue
    speedup = scratch / (pair / 2.0)
    verdict = "ok" if speedup >= 5.0 else "REGRESSION"
    print(f"  {verdict:>10}  maintenance speedup @{layers} layers: {speedup:.1f}x (bar: 5x)")
    if speedup < 5.0:
        failures.append(
            f"single-fact maintenance only {speedup:.1f}x faster than from-scratch at {layers} layers"
        )

if failures:
    print("\nbench_check FAILED:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("\nbench_check passed")
EOF
