#!/usr/bin/env bash
# Bench-regression smoke: run the criterion-shim benches in quick mode and
# gate on three checks — every failure names the specific bar (and the
# baseline file it came from), never a bare exit code:
#
#  1. absolute: every *named hot-path point* must stay within
#     BENCH_CHECK_FACTOR (default 2.0) of the mean committed in the
#     corresponding BENCH_*.json (set the factor higher on noisy shared
#     runners, lower for local pre-commit runs);
#  2. relative (machine-independent): single-fact incremental maintenance
#     must stay ≥ 5x faster per op than from-scratch re-evaluation on the
#     fixpoint-shaped ladder — the acceptance bar of the incremental
#     subsystem, measured within the fresh run so it cannot be fooled by a
#     uniformly faster or slower machine;
#  3. parallel scaling (core-aware): on hosts with ≥ 4 CPUs, the
#     large-instance exists and fixpoint points must run ≥
#     BENCH_PARALLEL_MIN_SPEEDUP (default 2.0) x faster at 4 scheduler
#     workers than at 1 — the intra-request-parallelism acceptance bar.
#     On smaller hosts the bar cannot be measured here; it is then only
#     acceptable if the *committed* BENCH_parallel.json proves the bar was
#     demonstrated on capable hardware (meta.host_cores ≥ 4). A small host
#     checking against a small-host baseline means the ≥2x bar has never
#     been enforced anywhere — that is a hard failure, not a silent skip
#     (set BENCH_PARALLEL_ACCEPT_STALE=1 to downgrade it to a warning
#     while a multicore re-record is pending);
#  4. telemetry overhead (machine-independent): the warm 4-thread submit
#     with the metrics registry on must stay within
#     BENCH_TELEMETRY_MAX_OVERHEAD (default 1.25 in quick mode; the <5%
#     acceptance figure is demonstrated at long windows and recorded in
#     BENCH_server.json) of the registry-off point from the same run.
#  5. flat writes (machine-independent): the 32-op mutation batch against
#     a 100x-size instance must stay within BENCH_FLAT_WRITE_MAX (default
#     2.0) of the same batch against the 1x instance, measured within the
#     fresh run — the acceptance bar of the page-granular copy-on-write
#     snapshot path (a reintroduced O(instance) clone fails it instantly).
#
# Usage: scripts/bench_check.sh
#   env: BENCH_CHECK_FACTOR=2.0  BENCH_PARALLEL_MIN_SPEEDUP=2.0
#        CRITERION_SHIM_MEASURE_MS=25  BENCH_PARALLEL_ACCEPT_STALE=1
#        BENCH_TELEMETRY_MAX_OVERHEAD=1.05  BENCH_FLAT_WRITE_MAX=2.0
set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${BENCH_CHECK_FACTOR:-2.0}"
PAR_SPEEDUP="${BENCH_PARALLEL_MIN_SPEEDUP:-2.0}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

export CRITERION_SHIM_MEASURE_MS="${CRITERION_SHIM_MEASURE_MS:-25}"
export CRITERION_SHIM_JSON="$OUT"
export BENCH_PARALLEL_MIN_SPEEDUP="$PAR_SPEEDUP"

cargo bench -p sirup-bench \
  --bench hom_plan \
  --bench kernel_hot \
  --bench server_throughput \
  --bench engine_incremental \
  --bench server_mutation \
  --bench parallel_scaling

python3 - "$OUT" "$FACTOR" <<'EOF'
import json, os, sys

fresh_path, factor = sys.argv[1], float(sys.argv[2])
par_bar = float(os.environ.get("BENCH_PARALLEL_MIN_SPEEDUP", "2.0"))
fresh = {}
fresh_min = {}
for line in open(fresh_path):
    line = line.strip()
    if line:
        p = json.loads(line)
        fresh[p["id"]] = p["mean_ns"]
        fresh_min[p["id"]] = p["min_ns"]

# The named hot-path points, per committed baseline file.
WATCH = {
    "BENCH_hom.json": [
        "hom_plan/planned_exists/4",
        "hom_plan/planned_pinned_sweep",
        "hom_plan/planned_enumerate",
        "kernel_hot/intersect/16384",
        "kernel_hot/count_and/16384",
        "kernel_hot/csr_out_scan",
        "kernel_hot/freeze_4096",
    ],
    "BENCH_server.json": [
        "server/submit_warm_96req/4",
        "server/replay_closed_96req_4t",
    ],
    "BENCH_incremental.json": [
        "incremental/maintain_local_pair/24",
        "incremental/maintain_cascade_pair/24",
        "server_mutation/mutation_submit_32req/4",
        "server_mutation/replay_mixed_mutations_4t",
        "server_mutation_scale/32req/1x",
        "server_mutation_scale/32req/100x",
    ],
    "BENCH_parallel.json": [
        "parallel/seq_exists",
        "parallel/seq_fixpoint",
        "parallel/exists/4",
        "parallel/fixpoint/4",
    ],
}

# Every entry names the bar that failed and the baseline file it is
# checked against, so a red CI run points straight at the culprit.
failures = []
print(f"\nbench_check: factor {factor}x vs committed means")
for path, ids in WATCH.items():
    committed = {r["id"]: r["mean_ns"] for r in json.load(open(path))["results"]}
    for pid in ids:
        bar = f"[{path}] {pid}"
        if pid not in committed:
            failures.append(f"{bar}: baseline point missing from {path}")
            continue
        if pid not in fresh:
            failures.append(f"{bar}: not produced by this run")
            continue
        ratio = fresh[pid] / committed[pid]
        verdict = "ok" if ratio <= factor else "REGRESSION"
        print(f"  {verdict:>10}  {bar}: {fresh[pid]:,.0f} ns vs {committed[pid]:,.0f} ns ({ratio:.2f}x)")
        if ratio > factor:
            failures.append(f"{bar}: {ratio:.2f}x over the committed mean (allowed {factor}x)")

# Machine-independent acceptance bar of the CSR substrate: the same plan
# executions on live paged reads vs. on an attached FrozenStructure
# snapshot, within this run. The frozen points must be >= 1.3x faster on
# the exists and pinned-sweep shapes (the CSR-substrate PR's target).
csr_bar = 1.3
for live_id, frozen_id in (
    ("hom_plan/planned_exists_live/4", "hom_plan/planned_exists/4"),
    ("hom_plan/planned_pinned_sweep_live", "hom_plan/planned_pinned_sweep"),
):
    bar = f"[csr] {frozen_id} vs live reads"
    if live_id not in fresh or frozen_id not in fresh:
        failures.append(f"{bar}: points missing from this run")
        continue
    mean_speedup = fresh[live_id] / fresh[frozen_id]
    min_speedup = fresh_min[live_id] / fresh_min[frozen_id]
    speedup = max(mean_speedup, min_speedup)  # noisy-runner treatment as below
    verdict = "ok" if speedup >= csr_bar else "REGRESSION"
    print(f"  {verdict:>10}  {bar}: {speedup:.2f}x "
          f"(mean {mean_speedup:.2f}x, best-sample {min_speedup:.2f}x, bar: {csr_bar}x)")
    if speedup < csr_bar:
        failures.append(
            f"{bar}: only {speedup:.2f}x faster than live paged reads (bar: {csr_bar}x)")

# Machine-independent acceptance bar: per-op maintenance (the pair point
# holds two ops) at least 5x below from-scratch on the same run.
for layers in ("8", "24"):
    bar = f"[incremental] maintenance speedup @{layers} layers"
    scratch = fresh.get(f"incremental/from_scratch/{layers}")
    pair = fresh.get(f"incremental/maintain_local_pair/{layers}")
    if scratch is None or pair is None:
        failures.append(f"{bar}: points missing from this run")
        continue
    speedup = scratch / (pair / 2.0)
    verdict = "ok" if speedup >= 5.0 else "REGRESSION"
    print(f"  {verdict:>10}  {bar}: {speedup:.1f}x (bar: 5x)")
    if speedup < 5.0:
        failures.append(f"{bar}: only {speedup:.1f}x faster than from-scratch (bar: 5x)")

# Telemetry must be near-free on the warm path: the same 4-thread warm
# batch with the metrics registry on vs off, within this run. The spine's
# acceptance bar is <5% overhead (demonstrated in BENCH_server.json's
# meta.note at 150 ms windows); quick 25 ms windows on shared 1-core
# runners see ±15% scheduling noise on either point, so the gated figure
# is the *less noisy* of the mean ratio and the best-sample ratio (a real
# regression — e.g. a counter taking a lock — raises both; one-sided
# noise inflates only one), against a padded 1.25x default. Override
# with BENCH_TELEMETRY_MAX_OVERHEAD for a strict long-window local run.
tel_bar = float(os.environ.get("BENCH_TELEMETRY_MAX_OVERHEAD", "1.25"))
bar = "[telemetry] warm submit overhead (registry on vs off)"
on_id, off_id = "server/submit_warm_96req/4", "server/submit_warm_96req_telemetry_off/4"
if on_id not in fresh or off_id not in fresh:
    failures.append(f"{bar}: points missing from this run")
else:
    mean_ratio = fresh[on_id] / fresh[off_id]
    min_ratio = fresh_min[on_id] / fresh_min[off_id]
    ratio = min(mean_ratio, min_ratio)
    verdict = "ok" if ratio <= tel_bar else "REGRESSION"
    print(f"  {verdict:>10}  {bar}: {ratio:.3f}x "
          f"(mean {mean_ratio:.3f}x, best-sample {min_ratio:.3f}x, bar: {tel_bar}x)")
    if ratio > tel_bar:
        failures.append(f"{bar}: {ratio:.3f}x > {tel_bar}x over the telemetry-off run")

# Flat writes: identical 32-op mutation batches against 1x / 100x
# instances from the same run. With page-granular copy-on-write snapshots
# the per-op write cost is O(touched pages), so the ratio stays near 1;
# any reintroduced O(instance) work in the mutation path (a full clone, a
# per-mutation instance walk) blows straight through the 2x bar.
flat_bar = float(os.environ.get("BENCH_FLAT_WRITE_MAX", "2.0"))
bar = "[flat-writes] mutation batch 100x-vs-1x instance"
one_x = fresh.get("server_mutation_scale/32req/1x")
hundred_x = fresh.get("server_mutation_scale/32req/100x")
if one_x is None or hundred_x is None:
    failures.append(f"{bar}: points missing from this run")
else:
    mean_ratio = hundred_x / one_x
    min_ratio = fresh_min["server_mutation_scale/32req/100x"] / \
        fresh_min["server_mutation_scale/32req/1x"]
    ratio = min(mean_ratio, min_ratio)  # same noise treatment as telemetry
    verdict = "ok" if ratio <= flat_bar else "REGRESSION"
    print(f"  {verdict:>10}  {bar}: {ratio:.2f}x "
          f"(mean {mean_ratio:.2f}x, best-sample {min_ratio:.2f}x, bar: {flat_bar}x)")
    if ratio > flat_bar:
        failures.append(
            f"{bar}: {ratio:.2f}x > {flat_bar}x — write latency is no longer "
            f"flat in instance size (O(instance) work is back in the mutation path)")

# Intra-request parallel scaling: 4 scheduler workers vs 1 on the same
# run's large-instance points. Enforced directly on hosts with >= 4 CPUs.
# On smaller hosts the run itself cannot show wall-clock speedup, so the
# bar falls back to the committed baseline's provenance: if that was also
# recorded on a small host (meta.host_cores < 4), the >= par_bar claim has
# never been checked anywhere — fail loudly instead of skipping silently.
cores = os.cpu_count() or 1
baseline_cores = json.load(open("BENCH_parallel.json"))["meta"].get("host_cores", 0)
accept_stale = os.environ.get("BENCH_PARALLEL_ACCEPT_STALE", "") == "1"
for point in ("exists", "fixpoint"):
    bar = f"[parallel] {point} 4-vs-1-worker speedup"
    one = fresh.get(f"parallel/{point}/1")
    four = fresh.get(f"parallel/{point}/4")
    if one is None or four is None:
        failures.append(f"{bar}: points missing from this run")
        continue
    speedup = one / four
    if cores >= 4:
        verdict = "ok" if speedup >= par_bar else "REGRESSION"
        print(f"  {verdict:>10}  {bar}: {speedup:.2f}x (bar: {par_bar}x, {cores} cores)")
        if speedup < par_bar:
            failures.append(f"{bar}: {speedup:.2f}x < {par_bar}x on a {cores}-core host")
    elif baseline_cores >= 4:
        print(f"   WARNING  {bar}: SKIPPED on this host — host_cores {cores} < 4, so the "
              f">= {par_bar}x bar cannot be measured here; it stands on the committed "
              f"BENCH_parallel.json (meta.host_cores {baseline_cores}). This run's "
              f"(ungated) figure: {speedup:.2f}x")
    elif accept_stale:
        print(f"   WARNING  {bar}: UNENFORCED — this host has {cores} core(s) and the "
              f"committed BENCH_parallel.json was recorded on {baseline_cores} core(s); "
              f"accepted because BENCH_PARALLEL_ACCEPT_STALE=1")
    else:
        failures.append(
            f"{bar}: NEVER ENFORCED — this host has {cores} core(s) and the committed "
            f"BENCH_parallel.json was recorded on {baseline_cores} core(s), so the "
            f">= {par_bar}x bar has been checked nowhere. Re-record BENCH_parallel.json "
            f"on a >= 4-core machine (see its meta.note), or set "
            f"BENCH_PARALLEL_ACCEPT_STALE=1 to acknowledge the gap")

if failures:
    print("\nbench_check FAILED — the bars that regressed:")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("\nbench_check passed")
EOF
