//! Offline shim for the subset of the `criterion` crate (0.5 API) used by
//! this workspace's benches.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal wall-clock harness instead of the real statistics engine. It
//! keeps the criterion *shape* — groups, `BenchmarkId`, `Bencher::iter`,
//! `sample_size` / `warm_up_time` / `measurement_time` — and measures each
//! benchmark as `sample_size` samples of auto-calibrated iteration batches,
//! reporting the per-iteration mean, min and max.
//!
//! Environment knobs:
//!
//! * `CRITERION_SHIM_MEASURE_MS` — override every group's measurement window
//!   (useful for a quick smoke baseline);
//! * `CRITERION_SHIM_JSON` — path to which one JSON line per benchmark is
//!   appended (`{"id": ..., "mean_ns": ..., ...}`), consumed by
//!   `BENCH_baseline.json` tooling.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Marker type standing in for criterion's wall-clock measurement.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Identifier `function_name/parameter` for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name: `&str`, `String`, `BenchmarkId`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier (best-effort without inline asm).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Settings {
    fn apply_env(mut self) -> Self {
        if let Ok(ms) = std::env::var("CRITERION_SHIM_MEASURE_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                self.measurement_time = Duration::from_millis(ms);
                self.warm_up_time = Duration::from_millis((ms / 4).max(1));
            }
        }
        if let Ok(n) = std::env::var("CRITERION_SHIM_SAMPLES") {
            if let Ok(n) = n.parse::<usize>() {
                self.sample_size = n.max(2);
            }
        }
        self
    }
}

/// The top-level harness object threaded through `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = id.into_benchmark_id();
        run_benchmark(&name, Settings::default().apply_env(), f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&name, self.settings.apply_env(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, mut f: F) {
    // Warm-up and calibration: run single iterations until the warm-up
    // window closes, tracking the observed per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        warm_iters += 1;
        if warm_start.elapsed() > settings.warm_up_time * 4 {
            break; // a single iteration dwarfs the window; stop calibrating
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

    // Size each sample so the whole measurement fits the window.
    let per_sample = settings.measurement_time / settings.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        bencher.iters = iters_per_sample;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }

    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    println!(
        "bench: {name:<50} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        samples_ns.len(),
        iters_per_sample,
    );

    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                name.replace('\\', "\\\\").replace('"', "\\\""),
                mean,
                min,
                max,
                samples_ns.len(),
                iters_per_sample,
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a function `$name` running each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups (harness = false entry point).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and test-harness flags) to bench
            // binaries; this shim takes no arguments and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion;
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "10");
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        let mut hits = 0u64;
        g.bench_function("count", |b| b.iter(|| hits += 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert!(hits > 0, "benchmark closure never ran");
    }
}
