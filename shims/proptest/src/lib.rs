//! Offline shim for the subset of the `proptest` crate (1.x API) used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this replacement. It keeps the *property-testing model* — strategies
//! compose into generators, the [`proptest!`] macro runs each property over
//! `ProptestConfig::cases` pseudo-random inputs, `prop_assert*` report
//! failures, `prop_assume!` discards cases — but drops the features the
//! workspace does not rely on:
//!
//! * **no shrinking** — a failing case reports its deterministic case seed
//!   instead of a minimised counterexample (re-run with `PROPTEST_SHIM_SEED`
//!   to reproduce);
//! * **no persistence / regression files**;
//! * **uniform choice in `prop_oneof!`** (no weighted arms).
//!
//! Supported surface: [`strategy::Strategy`] with `prop_map`,
//! `prop_flat_map`, `prop_recursive`, `boxed`; strategies for integer
//! ranges, tuples (arity ≤ 4), [`bool::ANY`], [`collection::vec`], and
//! [`strategy::Just`]; the macros [`proptest!`], [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_assert_ne!`], [`prop_assume!`],
//! [`prop_oneof!`].

pub mod test_runner {
    /// Per-property configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failure: the property is falsified.
        Fail(String),
        /// `prop_assume!` failure: the case is discarded, not counted.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving all strategies — the rand shim's
    /// splitmix64 `StdRng`, wrapped (one generator core for the whole
    /// workspace, like real proptest depending on real rand).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        pub fn seed_from_u64(state: u64) -> Self {
            use rand::SeedableRng as _;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(state),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore as _;
            self.inner.next_u64()
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// The base seed for a named property: stable across runs (a hash of
    /// the test name), overridable via `PROPTEST_SHIM_SEED` — set it to a
    /// failing case's reported seed to reproduce, or to per-run entropy
    /// (e.g. `PROPTEST_SHIM_SEED=$RANDOM` in a scheduled CI job) to explore
    /// inputs beyond the fixed default corpus.
    pub fn base_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name: deterministic, no std RandomState.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A composable generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG state.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Recursive strategies: `levels` bounds the recursion depth; the
        /// `_total`/`_items` size hints of real proptest are accepted and
        /// ignored. Each level mixes the base case in with weight 1/3 so
        /// generation terminates with the same shape distribution spirit as
        /// upstream.
        fn prop_recursive<R, F>(
            self,
            levels: u32,
            _total: u32,
            _items: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..levels {
                let deeper = f(current).boxed();
                current = Union::new(vec![base.clone(), deeper.clone(), deeper]).boxed();
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(move |rng: &mut TestRng| self.new_value(rng)),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        inner: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among same-typed strategies (the `prop_oneof!` engine).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi - lo) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Run each property over `cases` deterministic pseudo-random inputs.
///
/// The `#[test]` attribute on each property is re-emitted verbatim (this
/// doctest omits it and drives the generated function directly):
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };

    (@impl ($cfg:expr)) => {};

    (@impl ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base = $crate::test_runner::base_seed(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut case: u64 = 0;
            // Bound discards like upstream: at most 10 rejects per case.
            let max_attempts = config.cases as u64 * 10;
            while passed < config.cases && case < max_attempts {
                let seed = base.wrapping_add(case);
                case += 1;
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(seed);
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                )+
                // catch_unwind so a *panicking* body (as opposed to a
                // prop_assert failure) still reports the reproduction seed
                // before the panic propagates.
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => passed += 1,
                    Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                    Ok(Err($crate::test_runner::TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest case failed (seed {seed}, re-run with PROPTEST_SHIM_SEED={seed}): {msg}"
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case panicked (seed {seed}, re-run with PROPTEST_SHIM_SEED={seed})"
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
            assert!(
                passed == config.cases,
                "too many rejected cases: {passed}/{} passed after {case} attempts",
                config.cases
            );
        }

        $crate::proptest! { @impl ($cfg) $($rest)* }
    };

    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_draws_all_arms() {
        let u = prop_oneof![0usize..1, 1usize..2, 2usize..3];
        let mut rng = crate::test_runner::TestRng::seed_from_u64(0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.new_value(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Expr {
            Leaf,
            Neg(Box<Expr>),
        }
        fn depth(e: &Expr) -> u32 {
            match e {
                Expr::Leaf => 0,
                Expr::Neg(inner) => 1 + depth(inner),
            }
        }
        let strat = (0u32..10)
            .prop_map(|_| Expr::Leaf)
            .prop_recursive(3, 24, 3, |inner| inner.prop_map(|e| Expr::Neg(Box::new(e))));
        let mut rng = crate::test_runner::TestRng::seed_from_u64(9);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.new_value(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never taken");
        assert!(max_depth <= 3, "depth bound violated: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(0u32..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0u32..10, prop::bool::ANY)) {
            let (n, _b) = pair;
            prop_assert!(n < 10);
        }
    }
}
