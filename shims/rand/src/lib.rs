//! Offline shim for the subset of the `rand` crate (0.8 API) used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen_range` / `gen_bool`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this tiny deterministic replacement instead of the real crate. The
//! generator is splitmix64 — statistically fine for the workloads here
//! (seeded test-instance generation), but **not** a cryptographic RNG and not
//! stream-compatible with the real `StdRng`. Seeded call sites remain fully
//! deterministic, which is all the tests and benches rely on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding, restricted to the `seed_from_u64` entry point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A sample range for [`Rng::gen_range`]; implemented for `a..b` and `a..=b`
/// over the integer types the workspace uses.
pub trait SampleRange<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // u64 of state, never yields a fixed point.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
    }
}
