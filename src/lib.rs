//! # monadic-sirups
//!
//! A Rust reproduction of **“Deciding Boundedness of Monadic Sirups”**
//! (Kikot, Kurucz, Podolskii, Zakharyaschev, PODS 2021).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`core`] — structures, CQs, programs (`Π_q`, `Σ_q`, `Δ_q`);
//! * [`hom`] — homomorphism search, cores, isomorphisms;
//! * [`engine`] — datalog and disjunctive certain-answer evaluation;
//! * [`fo`] — first-order formulas, model checking, SQL rendering and
//!   rewriting verification;
//! * [`cactus`] — cactus expansions and the Prop. 2 boundedness criterion;
//! * [`classifier`] — the §4 deciders (Theorems 7, 9, 11; Corollary 8);
//! * [`atm`] — alternating Turing machines and 01-tree encodings (§3.3);
//! * [`circuits`] — the §3.4 Boolean formula families;
//! * [`reduction`] — the §3.5 2ExpTime-hardness query construction;
//! * [`schemaorg`] — Prop. 5 (Schema.org / DL-Lite_bool presentations);
//! * [`workloads`] — the paper's named objects (q1…q8, D1, D2), generators,
//!   and the traffic/workload-file machinery;
//! * [`server`] — the concurrent certain-answer query service (sharded
//!   instance catalog, plan cache, batch executor).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-claim vs. measured index.
//!
//! ```
//! use monadic_sirups::cactus::{find_bound, BoundSearch, Boundedness};
//! use monadic_sirups::core::OneCq;
//!
//! // The paper's q4 (Example 1) — its sirup is unbounded.
//! let q4 = OneCq::parse("F(x), R(y,x), R(y,z), T(z)");
//! let verdict = find_bound(&q4, BoundSearch::default());
//! assert!(matches!(verdict, Boundedness::UnboundedEvidence { .. }));
//! ```

pub use sirup_atm as atm;
pub use sirup_cactus as cactus;
pub use sirup_circuits as circuits;
pub use sirup_classifier as classifier;
pub use sirup_core as core;
pub use sirup_engine as engine;
pub use sirup_fo as fo;
pub use sirup_hom as hom;
pub use sirup_reduction as reduction;
pub use sirup_schemaorg as schemaorg;
pub use sirup_server as server;
pub use sirup_workloads as workloads;
