//! Cross-crate integration tests, one module per experiment id of
//! DESIGN.md / EXPERIMENTS.md.

use monadic_sirups::cactus::{find_bound, is_focused_up_to, BoundSearch, Boundedness};
use monadic_sirups::classifier::{
    classify_delta_plus, classify_trichotomy, lambda_fo_rewritable, nl_hardness_condition,
    DeltaPlusClass, DitreeCqAnalysis, LambdaVerdict, NlHardness, TrichotomyClass,
};
use monadic_sirups::core::program::{pi_q, DSirup};
use monadic_sirups::engine::disjunctive::certain_answer_dsirup;
use monadic_sirups::engine::eval::certain_answer_goal;
use monadic_sirups::workloads as paper;

mod e1_zoo {
    use super::*;

    #[test]
    fn q3_is_nl_complete() {
        assert_eq!(
            classify_trichotomy(&paper::q3()),
            Err(monadic_sirups::classifier::trichotomy::TrichotomyError::WrongSolitaryCounts(2, 1))
        );
        // q3 has two solitary Ts; Theorem 7 (i) still gives NL-hardness.
        let a = DitreeCqAnalysis::new(&paper::q3()).unwrap();
        assert_eq!(nl_hardness_condition(&a), NlHardness::ComparablePair);
    }

    #[test]
    fn q4_is_l_complete_everywhere() {
        assert_eq!(
            classify_trichotomy(&paper::q4()),
            Ok(TrichotomyClass::LComplete)
        );
        let a = DitreeCqAnalysis::new(&paper::q4()).unwrap();
        assert_eq!(classify_delta_plus(&a), DeltaPlusClass::LHard);
        assert_eq!(lambda_fo_rewritable(&paper::q4_cq()), LambdaVerdict::LHard);
    }

    #[test]
    fn q5_is_fo_rewritable() {
        let b = find_bound(
            &paper::q5(),
            BoundSearch {
                max_d: 2,
                horizon: 5,
                cap: 10_000,
                sigma: false,
            },
        );
        assert_eq!(b, Boundedness::BoundedEvidence { d: 1, horizon: 5 });
    }
}

mod e2_case_distinction {
    use super::*;

    #[test]
    fn d1_answers_yes_for_q1() {
        // Example 2: the certain answer to (Δ_q1, G) over D1 is 'yes' by
        // case distinction over the two A-nodes.
        assert!(certain_answer_dsirup(
            &DSirup::new(paper::q1()),
            &paper::d1()
        ));
    }

    #[test]
    fn d2_answers_yes_for_q2_in_both_presentations() {
        let d2 = paper::d2();
        assert!(certain_answer_dsirup(&DSirup::new(paper::q2()), &d2));
        // Δ_q2 ≡ Π_q2 for the 1-CQ q2 (§2).
        assert!(certain_answer_goal(&pi_q(&paper::q2_cq()), &d2));
    }

    #[test]
    fn removing_the_seed_t_flips_d2() {
        // Dropping all T-labels from D2 leaves no base case: answer 'no'.
        let mut d = paper::d2();
        for v in d.nodes().collect::<Vec<_>>() {
            d.remove_label(v, monadic_sirups::core::Pred::T);
        }
        assert!(!certain_answer_goal(&pi_q(&paper::q2_cq()), &d));
    }
}

mod e3_cactus {
    use super::*;
    use monadic_sirups::cactus::Cactus;

    #[test]
    fn d2_is_a_depth1_cactus_with_three_segments() {
        let q2 = paper::q2_cq();
        let c = Cactus::root(&q2).bud(0, 0).bud(0, 1);
        assert_eq!(c.segment_count(), 3);
        assert!(monadic_sirups::hom::isomorphic(c.structure(), &paper::d2()));
        // Prop. 1 sanity: G ∈ Π_q2(C) for every cactus C.
        assert!(certain_answer_goal(&pi_q(&q2), c.structure()));
    }
}

mod e4_focused_unfocused {
    use super::*;

    #[test]
    fn q5_focused_and_sigma_bounded() {
        let q5 = paper::q5();
        assert_eq!(is_focused_up_to(&q5, 2, 10_000), Some(true));
        let sigma = find_bound(
            &q5,
            BoundSearch {
                max_d: 2,
                horizon: 5,
                cap: 10_000,
                sigma: true,
            },
        );
        assert!(matches!(sigma, Boundedness::BoundedEvidence { d: 1, .. }));
    }

    #[test]
    fn q6_unfocused_pi_bounded_sigma_unbounded() {
        let q6 = paper::q6();
        assert_eq!(is_focused_up_to(&q6, 2, 10_000), Some(false));
        let pi = find_bound(
            &q6,
            BoundSearch {
                max_d: 2,
                horizon: 5,
                cap: 10_000,
                sigma: false,
            },
        );
        assert!(matches!(pi, Boundedness::BoundedEvidence { .. }), "{pi:?}");
        let sigma = find_bound(
            &q6,
            BoundSearch {
                max_d: 2,
                horizon: 5,
                cap: 10_000,
                sigma: true,
            },
        );
        assert!(
            matches!(sigma, Boundedness::UnboundedEvidence { .. }),
            "{sigma:?}"
        );
    }
}

mod e5_q8 {
    use super::*;
    use monadic_sirups::cactus::enumerate::full_cactus;
    use monadic_sirups::hom::HomFinder;

    #[test]
    fn q8_rewrites_at_small_depth_and_folds_into_deeper_cactuses() {
        let q8 = paper::q8();
        let b = find_bound(
            &q8,
            BoundSearch {
                max_d: 2,
                horizon: 5,
                cap: 10_000,
                sigma: false,
            },
        );
        let Boundedness::BoundedEvidence { d, .. } = b else {
            panic!("q8 must be bounded, got {b:?}");
        };
        assert!(d <= 2);
        // The folding hom C_d → C_i for i = 3, 4 (Example 5's phenomenon).
        let small = full_cactus(&q8, d);
        for i in 3..=4 {
            let big = full_cactus(&q8, i);
            assert!(
                HomFinder::new(small.structure(), big.structure()).exists(),
                "C_{d} must fold into C_{i}"
            );
        }
        // And Theorem 9 agrees.
        assert_eq!(lambda_fo_rewritable(&q8), LambdaVerdict::FoRewritable);
    }
}

mod t7_reduction {
    use super::*;
    use monadic_sirups::classifier::theorem7::reduction_pair;
    use monadic_sirups::workloads::reach::{dag_reduction_instance, Digraph};

    #[test]
    fn biconditional_holds_for_q3_on_random_dags() {
        let q = paper::q3();
        let a = DitreeCqAnalysis::new(&q).unwrap();
        let (t, f) = reduction_pair(&a).unwrap();
        for seed in 0..6 {
            let g = Digraph::random_dag(6, 0.3, seed);
            for (s, tt) in [(0usize, 5usize), (1, 4)] {
                let d = dag_reduction_instance(&q, t, f, &g, s, tt);
                assert_eq!(
                    certain_answer_dsirup(&DSirup::new(q.clone()), &d),
                    g.reachable(s, tt),
                    "seed {seed}, {s}→{tt}"
                );
            }
        }
    }

    #[test]
    fn case_ii_cq_also_reduces() {
        // Asymmetric twin-free ditree (Theorem 7 (ii)).
        let q = monadic_sirups::core::parse::st("F(x), R(y,x), R(y,w), R(w,z), T(z)");
        let a = DitreeCqAnalysis::new(&q).unwrap();
        assert_eq!(nl_hardness_condition(&a), NlHardness::AsymmetricTwinFree);
        let (t, f) = reduction_pair(&a).unwrap();
        for seed in 0..4 {
            let g = Digraph::random_dag(5, 0.35, seed);
            let d = dag_reduction_instance(&q, t, f, &g, 0, 4);
            assert_eq!(
                certain_answer_dsirup(&DSirup::new(q.clone()), &d),
                g.reachable(0, 4),
                "seed {seed}"
            );
        }
    }
}

mod g_l_hardness {
    use super::*;
    use monadic_sirups::workloads::reach::{undirected_reduction_instance, Digraph};

    #[test]
    fn quasi_symmetric_q4_decides_undirected_reachability() {
        // Appendix G: for quasi-symmetric q, s ↔ t (undirected) iff 'yes'.
        let q = paper::q4();
        let a = DitreeCqAnalysis::new(&q).unwrap();
        let t = a.solitary_t[0];
        let f = a.solitary_f[0];
        for seed in 0..6 {
            let g = Digraph::random_dag(6, 0.25, seed);
            for (s, tt) in [(0usize, 5usize), (2, 4)] {
                let d = undirected_reduction_instance(&q, t, f, &g, s, tt);
                assert_eq!(
                    certain_answer_dsirup(&DSirup::new(q.clone()), &d),
                    g.connected(s, tt),
                    "seed {seed}, {s}↔{tt}"
                );
            }
        }
    }
}

mod t9_lambda {
    use super::*;

    /// Cross-validate the Theorem 9 decider against bounded-horizon Prop. 2
    /// evidence on the paper's Λ-CQs and random small ones.
    #[test]
    fn decider_agrees_with_brute_force_on_paper_cqs() {
        for (name, q, expect_fo) in [
            ("q4", paper::q4_cq(), false),
            ("q5", paper::q5(), true),
            ("q7", paper::q7(), true),
            ("q8", paper::q8(), true),
        ] {
            let verdict = lambda_fo_rewritable(&q);
            let expected = if expect_fo {
                LambdaVerdict::FoRewritable
            } else {
                LambdaVerdict::LHard
            };
            assert_eq!(verdict, expected, "{name}");
        }
    }

    #[test]
    fn decider_agrees_with_brute_force_on_random_lambdas() {
        use monadic_sirups::workloads::random::{random_ditree_cq, DitreeCqParams};
        let mut checked = 0;
        for seed in 0..120 {
            let Some(q) = random_ditree_cq(
                DitreeCqParams {
                    nodes: 6,
                    twin_prob: 0.5,
                    solitary_ts: 1,
                    s_edge_prob: 0.0,
                },
                seed,
            ) else {
                continue;
            };
            let verdict = lambda_fo_rewritable(&q);
            if verdict == LambdaVerdict::NotLambda || verdict == LambdaVerdict::Inconclusive {
                continue;
            }
            let brute = find_bound(
                &q,
                BoundSearch {
                    max_d: 2,
                    horizon: 4,
                    cap: 10_000,
                    sigma: false,
                },
            );
            match (verdict, &brute) {
                (LambdaVerdict::FoRewritable, Boundedness::BoundedEvidence { .. }) => {}
                (LambdaVerdict::LHard, Boundedness::UnboundedEvidence { .. }) => {}
                other => panic!("seed {seed}: decider vs brute force mismatch: {other:?}"),
            }
            checked += 1;
        }
        assert!(checked >= 20, "only {checked} Λ-CQs cross-validated");
    }
}

mod t11_trichotomy {
    use super::*;

    #[test]
    fn paper_single_pair_cqs() {
        assert_eq!(
            classify_trichotomy(&paper::q4()),
            Ok(TrichotomyClass::LComplete)
        );
        assert_eq!(
            classify_trichotomy(paper::q5().structure()),
            Ok(TrichotomyClass::FoRewritable)
        );
    }

    #[test]
    fn fo_verdicts_match_prop2_on_random_single_pair_ditrees() {
        use monadic_sirups::workloads::random::{random_ditree_cq, DitreeCqParams};
        let mut checked = 0;
        for seed in 0..120 {
            let Some(q) = random_ditree_cq(
                DitreeCqParams {
                    nodes: 6,
                    twin_prob: 0.4,
                    solitary_ts: 1,
                    s_edge_prob: 0.0,
                },
                seed,
            ) else {
                continue;
            };
            let Ok(class) = classify_trichotomy(q.structure()) else {
                continue;
            };
            let brute = find_bound(
                &q,
                BoundSearch {
                    max_d: 2,
                    horizon: 4,
                    cap: 10_000,
                    sigma: false,
                },
            );
            match (class, &brute) {
                (TrichotomyClass::FoRewritable, Boundedness::BoundedEvidence { .. }) => {}
                (
                    TrichotomyClass::LComplete | TrichotomyClass::NlComplete,
                    Boundedness::UnboundedEvidence { .. },
                ) => {}
                other => panic!("seed {seed}: {other:?} (q = {})", q.structure()),
            }
            checked += 1;
        }
        assert!(checked >= 25, "only {checked} ditrees cross-validated");
    }
}

mod t3_construction {
    use monadic_sirups::atm::machine::Atm;
    use monadic_sirups::reduction::build_query;

    #[test]
    fn construction_has_the_stated_shape() {
        let hq = build_query(&Atm::trivially_rejecting(), &[0]);
        let s = hq.q.structure();
        assert!(monadic_sirups::core::shape::is_dag(s));
        assert_eq!(hq.q.span(), 2);
        assert_eq!(monadic_sirups::core::cq::solitary_f(s).len(), 1);
        // (foc) via the structural argument.
        let f = monadic_sirups::core::cq::solitary_f(s)[0];
        assert!(s.out_degree(f) > 0);
        for tw in monadic_sirups::core::cq::twins(s) {
            assert_eq!(s.out_degree(tw), 0);
        }
    }

    #[test]
    fn sizes_polynomial_across_machines() {
        use monadic_sirups::reduction::measure;
        let r1 = measure(&Atm::trivially_rejecting(), &[0]);
        let r2 = measure(&Atm::first_symbol_machine(), &[1]);
        // first_symbol_machine has one more state; size grows but modestly.
        assert!(r2.atoms > r1.atoms);
        assert!(r2.atoms < 50 * r1.atoms);
    }
}

mod p5_schemaorg {
    use super::*;
    use monadic_sirups::schemaorg::{
        certain_answer_schemaorg, to_schemaorg_instance, SchemaOrgQuery,
    };

    #[test]
    fn certain_answers_transfer_on_paper_instances() {
        let q = paper::q1();
        let d = paper::d1();
        let lhs = certain_answer_dsirup(&DSirup::new(q.clone()), &d);
        let rhs = certain_answer_schemaorg(&SchemaOrgQuery::new(q), &to_schemaorg_instance(&d));
        assert!(lhs && rhs);
    }

    #[test]
    fn certain_answers_transfer_on_random_instances() {
        use monadic_sirups::workloads::random::random_instance;
        let q = paper::q3();
        for seed in 0..12 {
            let d = random_instance(8, 16, 0.6, 0.35, seed);
            let lhs = certain_answer_dsirup(&DSirup::new(q.clone()), &d);
            let rhs = certain_answer_schemaorg(
                &SchemaOrgQuery::new(q.clone()),
                &to_schemaorg_instance(&d),
            );
            assert_eq!(lhs, rhs, "seed {seed}");
        }
    }
}

mod equivalence_pi_delta {
    use super::*;

    /// §2: (Π_q, G) ≡ (Δ_q, G) for 1-CQs, over random instances.
    #[test]
    fn pi_and_delta_agree_for_one_cqs() {
        use monadic_sirups::workloads::random::random_instance;
        for (qname, q) in [
            ("q2", paper::q2_cq()),
            ("q3", paper::q3_cq()),
            ("q4", paper::q4_cq()),
        ] {
            let pi = pi_q(&q);
            for seed in 0..10 {
                let d = random_instance(7, 14, 0.6, 0.35, 1000 + seed);
                let via_pi = certain_answer_goal(&pi, &d);
                let via_delta = certain_answer_dsirup(&DSirup::new(q.structure().clone()), &d);
                assert_eq!(via_pi, via_delta, "{qname} seed {seed}");
            }
        }
    }
}

mod c8_delta_plus {
    use super::*;

    #[test]
    fn cor8_classification_of_the_zoo() {
        // Twins ⇒ FO; quasi-symmetric twin-free ⇒ L; else NL.
        let cases = [
            ("q4", paper::q4(), DeltaPlusClass::LHard),
            ("q3", paper::q3(), DeltaPlusClass::NlHard),
        ];
        for (name, q, expect) in cases {
            let a = DitreeCqAnalysis::new(&q).unwrap();
            assert_eq!(classify_delta_plus(&a), expect, "{name}");
        }
        let twin_cq = monadic_sirups::core::parse::st("F(x), R(x,y), F(y), T(y), R(y,z), T(z)");
        let a = DitreeCqAnalysis::new(&twin_cq).unwrap();
        assert_eq!(classify_delta_plus(&a), DeltaPlusClass::FoRewritable);
    }

    #[test]
    fn delta_plus_inconsistency_semantics() {
        // Over inconsistent data Δ⁺ entails everything.
        let q = paper::q1();
        let d = monadic_sirups::core::parse::st("T(u), F(u)");
        assert!(certain_answer_dsirup(
            &DSirup::with_disjointness(q.clone()),
            &d
        ));
        assert!(!certain_answer_dsirup(&DSirup::new(q), &d));
    }
}

mod t3b_toy_lemma4 {
    use super::*;
    use monadic_sirups::atm::machine::Atm;
    use monadic_sirups::circuits::formula::Formula;
    use monadic_sirups::circuits::typed::{InputSource, TypedFormula};
    use monadic_sirups::core::Pred;
    use monadic_sirups::reduction::{assemble, build_query, FrameType, GadgetSpec};

    /// Structural Lemma 4 evidence at full scale: the construction for a
    /// real machine is a valid span-2 dag 1-CQ and its cactus machinery
    /// runs. (Full Π_q evaluation over the ~30k-node query is a
    /// 2ExpTime-scale object; the feasible end-to-end run is the
    /// mini-inventory test below — see DESIGN.md.)
    #[test]
    fn cactus_machinery_runs_on_the_hardness_query() {
        let hq = build_query(&Atm::trivially_rejecting(), &[0]);
        let c = monadic_sirups::cactus::Cactus::root(&hq.q);
        let c1 = c.bud(0, 0);
        assert_eq!(c1.depth(), 1);
        let n = hq.q.structure().node_count();
        // Budding shares the focus node: |C1| = 2|q| − 1.
        assert_eq!(c1.structure().node_count(), 2 * n - 1);
        // Exactly one solitary F (the root focus) and one A (the bud point).
        let s = c1.structure();
        assert_eq!(
            s.nodes()
                .filter(|&v| s.has_label(v, Pred::F) && !s.has_label(v, Pred::T))
                .count(),
            1
        );
        assert_eq!(s.nodes_with_label(Pred::A).len(), 1);
    }

    /// End-to-end Prop. 1 run on a mini inventory assembled through the
    /// same gadget machinery (two tiny formulas, one AA and one AT frame):
    /// every cactus of the assembled query answers Π_q 'yes'.
    #[test]
    fn pi_q_holds_on_cactuses_of_a_mini_assembled_query() {
        let tiny = |name: &str| {
            TypedFormula::new(
                name,
                Formula::and(Formula::lit(0, true), Formula::lit(1, false)),
                vec![
                    InputSource::Up { pos: 0 },
                    InputSource::Down { group: 0, pos: 0 },
                ],
            )
        };
        let hq = assemble(vec![
            GadgetSpec {
                formula: tiny("MiniAa"),
                frame: FrameType::Aa,
            },
            GadgetSpec {
                formula: tiny("MiniAt"),
                frame: FrameType::At,
            },
        ]);
        assert_eq!(hq.q.span(), 2);
        let pi = pi_q(&hq.q);
        let c0 = monadic_sirups::cactus::Cactus::root(&hq.q);
        assert!(certain_answer_goal(&pi, c0.structure()));
        let c1 = c0.bud(0, 0);
        assert!(certain_answer_goal(&pi, c1.structure()));
        let c2 = c1.bud(0, 1);
        assert!(certain_answer_goal(&pi, c2.structure()));
    }
}
