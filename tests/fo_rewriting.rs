//! End-to-end FO-rewritability runs: Prop. 2 rewriting extraction →
//! FO translation → SQL rendering → semantic verification against the
//! datalog engine (experiments E4/E5 continued through the `sirup-fo`
//! layer).

use monadic_sirups::cactus::enumerate::enumerate_cactuses;
use monadic_sirups::cactus::{find_bound, pi_rewriting, sigma_rewriting, BoundSearch, Boundedness};
use monadic_sirups::core::program::{pi_q, sigma_q};
use monadic_sirups::core::{OneCq, Structure};
use monadic_sirups::engine::eval::{certain_answer_goal, certain_answers_unary};
use monadic_sirups::fo::{
    render_sql, ucq_to_fo, verify_boolean_rewriting, verify_unary_rewriting, SqlDialect,
};
use monadic_sirups::workloads::random::random_instance;
use monadic_sirups::workloads::{q5, q8};

/// Instances for verification: random ones plus all small cactuses of `q`
/// (which must answer 'yes') and their mutations.
fn family(q: &OneCq, seeds: std::ops::Range<u64>) -> Vec<Structure> {
    let mut out: Vec<Structure> = seeds
        .map(|s| random_instance(7, 12, 0.6, 0.4, 9_000 + s))
        .collect();
    let (cs, _) = enumerate_cactuses(q, 2, 64);
    out.extend(cs.iter().map(|c| c.structure().clone()));
    out.extend(cs.iter().map(|c| c.degree_structure()));
    out
}

#[test]
fn q5_pi_rewriting_verifies_at_certified_depth() {
    let q = q5();
    // Prop. 2 evidence certifies depth 1 (Example 4).
    let b = find_bound(
        &q,
        BoundSearch {
            max_d: 2,
            horizon: 5,
            cap: 10_000,
            sigma: false,
        },
    );
    let Boundedness::BoundedEvidence { d, .. } = b else {
        panic!("q5 must be bounded: {b:?}");
    };
    let rewriting = pi_rewriting(&q, d, 10_000).unwrap();
    let pi = pi_q(&q);
    let fam = family(&q, 0..20);
    let n = verify_boolean_rewriting(&rewriting, |i| certain_answer_goal(&pi, i), fam.iter())
        .expect("certified rewriting must agree with the engine");
    assert_eq!(n, fam.len());
}

#[test]
fn q5_sigma_rewriting_verifies() {
    let q = q5();
    let rewriting = sigma_rewriting(&q, 1, 10_000).unwrap();
    let sigma = sigma_q(&q);
    let fam = family(&q, 20..32);
    verify_unary_rewriting(&rewriting, |i| certain_answers_unary(&sigma, i), fam.iter())
        .expect("q5 is focused and bounded: the Σ-rewriting must verify");
}

#[test]
fn q8_rewriting_verifies_at_depth_2() {
    let q = q8();
    let rewriting = pi_rewriting(&q, 2, 10_000).unwrap();
    let pi = pi_q(&q);
    let fam = family(&q, 32..44);
    verify_boolean_rewriting(&rewriting, |i| certain_answer_goal(&pi, i), fam.iter())
        .expect("Example 5: q8 rewrites at depth 2");
}

#[test]
fn unbounded_q4_rewriting_fails_with_a_cactus_witness() {
    // q4's sirup is unbounded: every finite-depth candidate misses a deeper
    // cactus. The verifier must find that witness.
    let q = OneCq::parse("F(x), R(y,x), R(y,z), T(z)");
    let rewriting = pi_rewriting(&q, 2, 10_000).unwrap();
    let pi = pi_q(&q);
    let deep = monadic_sirups::cactus::enumerate::full_cactus(&q, 4);
    let fam = [deep.structure().clone()];
    let err = verify_boolean_rewriting(&rewriting, |i| certain_answer_goal(&pi, i), fam.iter())
        .unwrap_err();
    assert!(err.reference, "engine must answer 'yes' on the deep cactus");
    assert!(!err.rewriting, "depth-2 rewriting must miss it");
}

#[test]
fn sql_rendering_of_zoo_rewritings_is_wellformed() {
    for q in [q5(), q8()] {
        let ucq = pi_rewriting(&q, 1, 10_000).unwrap();
        let sql = render_sql(&ucq, SqlDialect::Ansi);
        assert!(sql.ends_with(';'));
        let opens = sql.matches('(').count();
        let closes = sql.matches(')').count();
        assert_eq!(opens, closes, "unbalanced SQL: {sql}");
        assert!(sql.contains("EXISTS"));
        let ddl = monadic_sirups::fo::sql::render_schema(&ucq);
        assert!(ddl.contains("CREATE TABLE nodes"));
    }
}

#[test]
fn fo_translation_matches_hom_evaluation_on_random_instances() {
    let q = q5();
    let ucq = pi_rewriting(&q, 1, 10_000).unwrap();
    let phi = ucq_to_fo(&ucq);
    for seed in 0..25 {
        let d = random_instance(6, 10, 0.5, 0.4, 7_000 + seed);
        assert_eq!(
            ucq.eval_boolean(&d),
            phi.eval_sentence(&d),
            "seed {seed} on {d}"
        );
    }
}
