//! Cross-crate validation of the linear (NL-style) evaluator: agreement
//! with the semi-naive engine across the paper's span-1 CQs, random
//! instances, cactuses, and the reduction instances of Theorem 7 /
//! Appendix G / Appendix E.

use monadic_sirups::cactus::enumerate::enumerate_cactuses;
use monadic_sirups::core::program::{pi_q, sigma_q};
use monadic_sirups::core::{OneCq, Pred};
use monadic_sirups::engine::eval::{certain_answer_goal, certain_answers_unary, evaluate};
use monadic_sirups::engine::linear::{linearity, LinearEvaluator, Linearity};
use monadic_sirups::workloads::appendix_e::appendix_e_instance;
use monadic_sirups::workloads::random::random_instance;
use monadic_sirups::workloads::reach::Digraph;
use monadic_sirups::workloads::{q4_cq, q5, q8};

fn span1_cqs() -> Vec<(&'static str, OneCq)> {
    vec![
        ("q4", q4_cq()),
        ("q5", q5()),
        ("q8", q8()),
        ("chain", OneCq::parse("F(x), R(x,y), T(y)")),
    ]
}

#[test]
fn all_span1_sirups_are_linear() {
    for (name, q) in span1_cqs() {
        assert_eq!(linearity(&sigma_q(&q)), Linearity::Linear, "{name}");
        assert_eq!(linearity(&pi_q(&q)), Linearity::Linear, "{name}");
    }
}

#[test]
fn linear_agrees_with_seminaive_on_random_instances() {
    for (name, q) in span1_cqs() {
        let sigma = sigma_q(&q);
        for seed in 0..10 {
            let d = random_instance(7, 12, 0.6, 0.4, 3_000 + seed);
            let fast = LinearEvaluator::new(&sigma, &d).goal_nodes(Pred::P);
            let slow = certain_answers_unary(&sigma, &d);
            assert_eq!(fast, slow, "{name} seed {seed} on {d}");
        }
    }
}

#[test]
fn linear_agrees_on_cactuses() {
    for (name, q) in span1_cqs() {
        let pi = pi_q(&q);
        let (cs, _) = enumerate_cactuses(&q, 3, 16);
        for c in &cs {
            let ev = LinearEvaluator::new(&pi, c.structure());
            assert!(ev.holds(Pred::GOAL), "{name} cactus depth {}", c.depth());
            assert!(certain_answer_goal(&pi, c.structure()));
        }
    }
}

#[test]
fn linear_agrees_on_appendix_e_instances() {
    let q = q4_cq();
    let pi = pi_q(&q);
    for seed in 0..5 {
        let g = Digraph::random_dag(5, 0.3, seed);
        let d = appendix_e_instance(&q, &g, 0, 4);
        let ev = LinearEvaluator::new(&pi, &d);
        assert_eq!(
            ev.holds(Pred::GOAL),
            certain_answer_goal(&pi, &d),
            "seed {seed}"
        );
    }
}

#[test]
fn fact_graph_size_is_quadratic_at_worst() {
    // The fact graph has at most |D|² edges per recursive rule.
    let q = q4_cq();
    let sigma = sigma_q(&q);
    let d = random_instance(8, 16, 0.5, 0.5, 77);
    let ev = LinearEvaluator::new(&sigma, &d);
    assert!(ev.edges.len() <= d.node_count() * d.node_count());
}

#[test]
fn derivation_rounds_vs_reachability_depth() {
    // The semi-naive engine needs Θ(chain length) rounds; the fact-graph
    // evaluator sees the same facts as one reachability pass.
    let mut text = String::from("T(c0)");
    for i in 0..6 {
        text.push_str(&format!(
            ", A(c{next}), R(m{i},c{next}), R(m{i},c{i})",
            next = i + 1
        ));
    }
    let (d, n) = monadic_sirups::core::parse::parse_structure(&text).unwrap();
    let sigma = sigma_q(&q4_cq());
    let ev = evaluate(&sigma, &d);
    let lin = LinearEvaluator::new(&sigma, &d);
    assert!(ev.rounds >= 2);
    assert!(lin.derived.contains(&(Pred::P, n["c6"])));
    assert_eq!(lin.goal_nodes(Pred::P), certain_answers_unary(&sigma, &d));
}
