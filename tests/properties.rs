//! Property-based tests (proptest) over randomly generated structures,
//! exercising the core invariants listed in DESIGN.md.

use monadic_sirups::core::builder::GlueBuilder;
use monadic_sirups::core::{Node, Pred, Structure};
use monadic_sirups::hom::{all_homs, core_of, find_hom, hom_exists, is_minimal};
use proptest::prelude::*;

/// Strategy: a random small structure with F/T/A labels and R/S edges.
fn arb_structure(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Structure> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec(((0..n), (0..n), prop::bool::ANY), 0..=max_edges);
        let labels = proptest::collection::vec(0..n, 0..=n);
        (edges, labels, proptest::collection::vec(0..n, 0..=n)).prop_map(
            move |(edges, t_labels, f_labels)| {
                let mut s = Structure::with_nodes(n);
                for (u, v, use_s) in edges {
                    let p = if use_s { Pred::S } else { Pred::R };
                    s.add_edge(p, Node(u as u32), Node(v as u32));
                }
                for v in t_labels {
                    s.add_label(Node(v as u32), Pred::T);
                }
                for v in f_labels {
                    s.add_label(Node(v as u32), Pred::F);
                }
                s
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every hom found by the engine is a genuine homomorphism.
    #[test]
    fn found_homs_are_valid(
        p in arb_structure(4, 6),
        t in arb_structure(5, 10),
    ) {
        if let Some(h) = find_hom(&p, &t) {
            prop_assert!(p.is_hom(&t, &h));
        }
    }

    /// Hom existence is closed under composition: p → t and t → u gives
    /// p → u.
    #[test]
    fn homs_compose(
        p in arb_structure(3, 4),
        t in arb_structure(4, 6),
        u in arb_structure(4, 6),
    ) {
        if hom_exists(&p, &t) && hom_exists(&t, &u) {
            prop_assert!(hom_exists(&p, &u));
        }
    }

    /// The core is minimal, hom-equivalent to the original, and idempotent.
    #[test]
    fn core_properties(s in arb_structure(5, 8)) {
        let (c, retraction) = core_of(&s);
        prop_assert!(is_minimal(&c));
        prop_assert!(s.is_hom(&c, &retraction));
        prop_assert!(hom_exists(&c, &s));
        let (cc, _) = core_of(&c);
        prop_assert_eq!(cc.node_count(), c.node_count());
    }

    /// Identity is always among the enumerated endomorphisms.
    #[test]
    fn identity_endomorphism_enumerated(s in arb_structure(4, 6)) {
        let id: Vec<Node> = s.nodes().collect();
        let homs = all_homs(&s, &s, 50_000);
        prop_assert!(homs.contains(&id));
    }

    /// GlueBuilder quotient preserves atoms: every atom of each part
    /// appears (transported) in the glued result.
    #[test]
    fn gluing_preserves_atoms(a in arb_structure(4, 6), b in arb_structure(4, 6)) {
        let mut builder = GlueBuilder::new();
        let oa = builder.add(&a);
        let ob = builder.add(&b);
        builder.glue(Node(oa), Node(ob));
        let (g, map) = builder.finish();
        for (p, v) in a.unary_atoms() {
            prop_assert!(g.has_label(map[(oa + v.0) as usize], p));
        }
        for (p, u, v) in b.edges() {
            prop_assert!(g.has_edge(p, map[(ob + u.0) as usize], map[(ob + v.0) as usize]));
        }
    }
}

mod hom_props {
    use super::*;
    use monadic_sirups::core::OneCq;
    use monadic_sirups::hom::{find_isomorphism, isomorphic};
    use monadic_sirups::workloads::random::{random_ditree_cq, DitreeCqParams};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Taking the core is idempotent up to isomorphism: the core of a
        /// core is the core itself (not merely of equal size).
        #[test]
        fn core_of_core_idempotent(s in arb_structure(5, 8)) {
            let (c, _) = core_of(&s);
            let (cc, _) = core_of(&c);
            prop_assert!(isomorphic(&c, &cc), "core not idempotent: {c} vs {cc}");
        }

        /// Hom search is consistent with isomorphism: an explicit
        /// isomorphism is a valid hom in both directions, isomorphism is
        /// symmetric, and every structure is isomorphic to itself.
        #[test]
        fn hom_search_consistent_with_isomorphism(
            s in arb_structure(5, 8),
            t in arb_structure(5, 8),
        ) {
            prop_assert!(isomorphic(&s, &s));
            if let Some(f) = find_isomorphism(&s, &t) {
                prop_assert!(s.is_hom(&t, &f));
                prop_assert!(hom_exists(&s, &t));
                prop_assert!(hom_exists(&t, &s));
                prop_assert!(isomorphic(&t, &s), "isomorphism must be symmetric");
            }
        }

        /// `OneCq::parse` round-trips through `Display` up to isomorphism,
        /// preserving span and focus labelling.
        #[test]
        fn one_cq_parse_display_round_trip(
            seed in 0u64..10_000,
            nodes in 3usize..8,
            solitary_ts in 1usize..3,
        ) {
            let params = DitreeCqParams { nodes, solitary_ts, ..Default::default() };
            let q = random_ditree_cq(params, seed);
            // Generator misses are discarded (and retried), not counted as
            // vacuous passes.
            prop_assume!(q.is_some());
            let q = q.unwrap();
            let text = q.to_string();
            let back = OneCq::parse(&text);
            prop_assert!(
                isomorphic(q.structure(), back.structure()),
                "{q} vs {back}"
            );
            prop_assert_eq!(q.span(), back.span());
            prop_assert_eq!(q.twins().len(), back.twins().len());
        }
    }
}

mod disjunctive_props {
    use super::*;
    use monadic_sirups::core::program::{pi_q, DSirup};
    use monadic_sirups::core::OneCq;
    use monadic_sirups::engine::disjunctive::certain_answer_dsirup;
    use monadic_sirups::engine::eval::certain_answer_goal;
    use monadic_sirups::workloads::random::random_instance;

    /// Δ_q ≡ Π_q on random instances (the §2 equivalence), for a fixed
    /// span-1 1-CQ, driven by seeds for speed.
    #[test]
    fn delta_equals_pi_across_seeds() {
        let q = OneCq::parse("F(x), R(y,x), R(y,z), T(z)");
        let pi = pi_q(&q);
        for seed in 0..30 {
            let d = random_instance(7, 12, 0.6, 0.4, seed);
            assert_eq!(
                certain_answer_goal(&pi, &d),
                certain_answer_dsirup(&DSirup::new(q.structure().clone()), &d),
                "seed {seed}"
            );
        }
    }

    /// Monotonicity: adding a fact never flips 'yes' to 'no'.
    #[test]
    fn certain_answers_are_monotone() {
        let q = monadic_sirups::workloads::q3();
        for seed in 0..20 {
            let d = random_instance(6, 10, 0.6, 0.4, 100 + seed);
            let before = certain_answer_dsirup(&DSirup::new(q.clone()), &d);
            let mut d2 = d.clone();
            // Add a fresh disconnected T-node (harmless fact).
            let v = d2.add_node();
            d2.add_label(v, Pred::T);
            let after = certain_answer_dsirup(&DSirup::new(q.clone()), &d2);
            if before {
                assert!(after, "seed {seed}: adding a fact lost the answer");
            }
        }
    }
}

mod fo_props {
    use super::*;
    use monadic_sirups::engine::ucq::Ucq;
    use monadic_sirups::fo::transform::{from_prenex, is_nnf, simplify, to_nnf, to_prenex};
    use monadic_sirups::fo::{structure_to_cq, ucq_to_fo, Fo, Var};

    /// Strategy: a random FO sentence over variables v0..v2 with F/T labels
    /// and R edges, quantifier rank ≤ 3.
    fn arb_sentence() -> impl Strategy<Value = Fo> {
        let atom = prop_oneof![
            (0u32..3).prop_map(|v| Fo::Unary(Pred::F, Var(v))),
            (0u32..3).prop_map(|v| Fo::Unary(Pred::T, Var(v))),
            ((0u32..3), (0u32..3)).prop_map(|(a, b)| Fo::Binary(Pred::R, Var(a), Var(b))),
            ((0u32..3), (0u32..3)).prop_map(|(a, b)| Fo::Eq(Var(a), Var(b))),
        ];
        let open = atom.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                inner.clone().prop_map(|f| f.negate()),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                ((0u32..3), inner.clone()).prop_map(|(v, f)| Fo::exists(Var(v), f)),
                ((0u32..3), inner).prop_map(|(v, f)| Fo::forall(Var(v), f)),
            ]
        });
        // Close all free variables existentially.
        open.prop_map(|f| Fo::exists_all(f.free_vars(), f))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// NNF, simplification and prenex conversion preserve semantics.
        #[test]
        fn transforms_preserve_semantics(
            phi in arb_sentence(),
            d in arb_structure(4, 6),
        ) {
            let reference = phi.eval_sentence(&d);
            prop_assert_eq!(simplify(&phi).eval_sentence(&d), reference);
            let n = to_nnf(&phi);
            prop_assert!(is_nnf(&n));
            prop_assert_eq!(n.eval_sentence(&d), reference);
            let (prefix, matrix) = to_prenex(&n);
            prop_assert_eq!(matrix.quantifier_rank(), 0);
            prop_assert_eq!(from_prenex(&prefix, matrix).eval_sentence(&d), reference);
        }

        /// The CQ → FO translation agrees with hom-based evaluation.
        #[test]
        fn cq_translation_agrees_with_hom(
            p in arb_structure(3, 4),
            d in arb_structure(4, 8),
        ) {
            let phi = structure_to_cq(&p);
            prop_assert_eq!(phi.eval_sentence(&d), hom_exists(&p, &d));
        }

        /// UCQ → FO agrees with the Ucq evaluator on Boolean unions.
        #[test]
        fn ucq_translation_agrees(
            p1 in arb_structure(3, 4),
            p2 in arb_structure(3, 4),
            d in arb_structure(4, 8),
        ) {
            let u = Ucq::boolean([p1, p2]);
            prop_assert_eq!(ucq_to_fo(&u).eval_sentence(&d), u.eval_boolean(&d));
        }
    }
}

mod linear_props {
    use super::*;
    use monadic_sirups::core::program::sigma_q;
    use monadic_sirups::core::OneCq;
    use monadic_sirups::engine::eval::certain_answers_unary;
    use monadic_sirups::engine::linear::LinearEvaluator;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The NL-style fact-graph evaluator agrees with semi-naive
        /// evaluation on arbitrary instances (A-labels added to make
        /// recursion reachable).
        #[test]
        fn linear_evaluator_agrees(d0 in arb_structure(5, 8), a_nodes in proptest::collection::vec(0usize..5, 0..5)) {
            let mut d = d0;
            for v in a_nodes {
                if v < d.node_count() {
                    d.add_label(Node(v as u32), Pred::A);
                }
            }
            let q = OneCq::parse("F(x), R(y,x), R(y,z), T(z)");
            let sigma = sigma_q(&q);
            let fast = LinearEvaluator::new(&sigma, &d).goal_nodes(Pred::P);
            let slow = certain_answers_unary(&sigma, &d);
            prop_assert_eq!(fast, slow);
        }
    }
}

mod containment_props {
    use super::*;
    use monadic_sirups::engine::containment::{minimise_ucq, ucq_contained_in, ucq_equivalent};
    use monadic_sirups::engine::ucq::Ucq;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Minimisation preserves UCQ semantics (checked by containment
        /// both ways *and* by evaluation over independent instances).
        #[test]
        fn minimise_preserves_semantics(
            p1 in arb_structure(3, 4),
            p2 in arb_structure(3, 4),
            p3 in arb_structure(3, 4),
            d in arb_structure(4, 8),
        ) {
            let u = Ucq::boolean([p1, p2, p3]);
            let m = minimise_ucq(&u);
            prop_assert!(m.len() <= u.len());
            prop_assert!(ucq_equivalent(&u, &m));
            prop_assert_eq!(u.eval_boolean(&d), m.eval_boolean(&d));
        }

        /// Containment is sound w.r.t. evaluation: u ⊑ v and u holds on d
        /// imply v holds on d.
        #[test]
        fn containment_sound(
            p1 in arb_structure(3, 4),
            p2 in arb_structure(3, 4),
            d in arb_structure(4, 8),
        ) {
            let u = Ucq::boolean([p1]);
            let v = Ucq::boolean([p2]);
            if ucq_contained_in(&u, &v) && u.eval_boolean(&d) {
                prop_assert!(v.eval_boolean(&d));
            }
        }
    }
}

mod serialisation_props {
    use super::*;
    use monadic_sirups::core::parse::{parse_structure, to_text};
    use monadic_sirups::hom::isomorphic;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The text format round-trips up to isomorphism (node names are
        /// regenerated, so only the shape is preserved — which is the
        /// contract: structures are CQs, defined up to variable renaming).
        #[test]
        fn text_round_trip(s in arb_structure(5, 8)) {
            let text = to_text(&s);
            // Structures with isolated unlabeled nodes lose them in the
            // atom-list format; restrict to the preserved fragment.
            let has_isolated = s
                .nodes()
                .any(|v| s.labels(v).is_empty() && s.out_degree(v) == 0 && s.in_degree(v) == 0);
            prop_assume!(!has_isolated);
            let (back, _) = parse_structure(&text).unwrap();
            prop_assert!(isomorphic(&s, &back), "{s} vs {back}");
        }
    }
}

mod budding_props {
    use super::*;
    use monadic_sirups::cactus::Cactus;
    use monadic_sirups::core::cq::{solitary_f, solitary_t};
    use monadic_sirups::core::OneCq;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random budding sequences keep the cactus invariants: exactly one
        /// solitary F (the root focus); A-count = number of buddings; node
        /// count = |q| + buddings·(|q| − 1); every unbudded slot carries T.
        #[test]
        fn random_budding_invariants(choices in proptest::collection::vec((0usize..8, 0usize..2), 0..6)) {
            let q = OneCq::parse("F(x), R(x,y1), T(y1), S(x,y2), T(y2)");
            let qn = q.structure().node_count();
            let mut c = Cactus::root(&q);
            let mut buds = 0usize;
            for (seg, slot) in choices {
                let seg = seg % c.segment_count();
                if c.can_bud(seg, slot) {
                    c = c.bud(seg, slot);
                    buds += 1;
                }
            }
            let s = c.structure();
            prop_assert_eq!(solitary_f(s).len(), 1);
            prop_assert_eq!(solitary_f(s)[0], c.root_focus());
            prop_assert_eq!(s.nodes_with_label(Pred::A).len(), buds);
            prop_assert_eq!(s.node_count(), qn + buds * (qn - 1));
            // Unbudded solitary-T slots: 2 per segment minus budded ones.
            prop_assert_eq!(solitary_t(s).len(), 2 * c.segment_count() - buds);
        }
    }
}

mod cactus_props {
    use monadic_sirups::cactus::enumerate::enumerate_cactuses;
    use monadic_sirups::core::cq::solitary_f;
    use monadic_sirups::core::program::pi_q;
    use monadic_sirups::core::OneCq;
    use monadic_sirups::engine::eval::certain_answer_goal;

    /// Prop. 1 sanity: `G ∈ Π_q(C)` for every cactus `C` of `q`; and every
    /// cactus has exactly one solitary F node (the root focus).
    #[test]
    fn every_cactus_satisfies_its_program() {
        for q in [
            OneCq::parse("F(x), R(y,x), R(y,z), T(z)"),
            monadic_sirups::workloads::q5(),
            monadic_sirups::workloads::paper::q2_cq(),
        ] {
            let pi = pi_q(&q);
            let (cs, _) = enumerate_cactuses(&q, 2, 200);
            for c in &cs {
                assert!(certain_answer_goal(&pi, c.structure()));
                assert_eq!(solitary_f(c.structure()).len(), 1);
                assert_eq!(solitary_f(c.structure())[0], c.root_focus());
            }
        }
    }

    /// Budding grows exactly one segment and keeps node bookkeeping right.
    #[test]
    fn budding_bookkeeping() {
        let q = monadic_sirups::workloads::paper::q2_cq();
        let (cs, complete) = enumerate_cactuses(&q, 2, 200);
        assert!(complete);
        for c in &cs {
            assert_eq!(
                c.segment_count(),
                c.skeleton().len(),
                "skeleton/segment mismatch"
            );
            for (i, seg) in c.segments().iter().enumerate() {
                if let Some((parent, slot)) = seg.parent {
                    assert!(parent < i, "parents precede children");
                    assert_eq!(c.segments()[parent].buds[slot], Some(i));
                }
            }
        }
    }
}
