//! T3 continued — gadget-level checks of the §3.5 construction at a
//! feasible scale, plus the ATM ↔ 01-tree ↔ circuit pipeline it rests on.

use monadic_sirups::atm::correct;
use monadic_sirups::atm::machine::Atm;
use monadic_sirups::atm::trees::{build_beta, Encoding};
use monadic_sirups::cactus::{is_focused_up_to, Cactus};
use monadic_sirups::circuits::families;
use monadic_sirups::circuits::formula::Formula;
use monadic_sirups::circuits::typed::{InputSource, TypedFormula};
use monadic_sirups::core::cq::twins;
use monadic_sirups::core::program::sigma_q;
use monadic_sirups::core::Pred;
use monadic_sirups::engine::eval::evaluate;
use monadic_sirups::reduction::{assemble, FrameType, GadgetSpec};

fn tiny(name: &str) -> TypedFormula {
    TypedFormula::new(
        name,
        Formula::and(Formula::lit(0, true), Formula::lit(1, false)),
        vec![
            InputSource::Up { pos: 0 },
            InputSource::Down { group: 0, pos: 0 },
        ],
    )
}

#[test]
fn mini_query_is_focused_hom_verified() {
    // The (foc) argument of §3.5.1 is structural (F has successors, twins
    // do not); verify it by actual hom search over all depth ≤ 1 cactuses.
    let hq = assemble(vec![GadgetSpec {
        formula: tiny("Mini"),
        frame: FrameType::Aa,
    }]);
    assert_eq!(is_focused_up_to(&hq.q, 1, 64), Some(true));
}

#[test]
fn sigma_derives_p_at_bud_points_of_mini_cactuses() {
    let hq = assemble(vec![
        GadgetSpec {
            formula: tiny("MiniA"),
            frame: FrameType::Aa,
        },
        GadgetSpec {
            formula: tiny("MiniB"),
            frame: FrameType::Ta,
        },
    ]);
    let sigma = sigma_q(&hq.q);
    // C1 = bud slot 0: the budded node must get P back through rule (7).
    let c0 = Cactus::root(&hq.q);
    let c1 = c0.bud(0, 0);
    let budded = c1.focus_of(1);
    let ev = evaluate(&sigma, c1.structure());
    assert!(ev.holds_at(Pred::P, budded));
}

#[test]
fn gadget_count_scales_size_linearly() {
    let sizes: Vec<usize> = (1..=3)
        .map(|n| {
            let gs = (0..n)
                .map(|i| GadgetSpec {
                    formula: tiny(&format!("G{i}")),
                    frame: FrameType::Aa,
                })
                .collect();
            assemble(gs).q.structure().size()
        })
        .collect();
    // Per-gadget increments are equal up to the quadratic inter-gadget
    // wiring term (2 extra atoms per ordered pair).
    let d1 = sizes[1] - sizes[0];
    let d2 = sizes[2] - sizes[1];
    assert!(d2 >= d1, "{sizes:?}");
    assert!(d2 - d1 <= 16, "super-linear jump: {sizes:?}");
}

#[test]
fn one_twin_per_gadget_and_twins_have_no_successors() {
    for n in [1usize, 3] {
        let gs = (0..n)
            .map(|i| GadgetSpec {
                formula: tiny(&format!("G{i}")),
                frame: FrameType::At,
            })
            .collect();
        let hq = assemble(gs);
        let s = hq.q.structure();
        let tw = twins(s);
        assert_eq!(tw.len(), n);
        for t in tw {
            assert_eq!(s.out_degree(t), 0);
        }
    }
}

#[test]
fn atm_semantics_ground_truth() {
    // The machines driving Theorem 3 toys behave as named.
    assert!(Atm::trivially_accepting().accepts(&[0], 8));
    assert!(!Atm::trivially_rejecting().accepts(&[0], 8));
    let m = Atm::first_symbol_machine();
    assert!(m.accepts(&[1], 8));
    assert!(!m.accepts(&[0], 8));
}

#[test]
fn beta_tree_of_real_computation_is_correct_everywhere() {
    // Claim 4.1 direction: a 01-tree built from a genuine computation has
    // only correct main nodes.
    let m = Atm::trivially_rejecting();
    let enc = Encoding::for_atm(&m);
    let w = [0usize];
    // Budget 20 covers two γ-tree levels, so the second ∨-configuration
    // (the reject) gets expanded and becomes decodable.
    let beta = build_beta(&m, &enc, &w, 0, 20);
    for &(main, _, _) in &beta.mains {
        assert!(
            correct::properly_branching(&beta.tree, main, enc.d())
                || beta.tree.child_count(main) == 0,
            "main {main} not properly branching"
        );
    }
    // And the rejecting machine's tree contains a reject main.
    assert!(beta
        .mains
        .iter()
        .any(|&(v, _, _)| correct::is_reject_main(&beta.tree, v, &m, &enc)));
}

#[test]
fn corrupting_a_configuration_is_detected() {
    // Claim 4.1 other direction (spot check): re-attaching the initial
    // configuration below a main node breaks proper computation, and the
    // Step circuit family sees it.
    let m = Atm::trivially_rejecting();
    let enc = Encoding::for_atm(&m);
    let w = [0usize];
    let mut beta = build_beta(&m, &enc, &w, 0, 4);
    let (root_main, c, _) = beta.mains[0].clone();
    let (m0, m1) = correct::successor_mains(&beta.tree, root_main);
    for nm in [m0.unwrap(), m1.unwrap()] {
        monadic_sirups::atm::trees::attach_gamma(&mut beta.tree, nm, &enc.encode(&c, false));
    }
    assert!(!correct::properly_computing(
        &beta.tree, root_main, &m, &enc
    ));
    let phi = families::step(&m, &enc);
    assert!(phi.satisfied_somewhere_at(&beta.tree, root_main));
}

#[test]
fn all_circuit_families_instantiate_for_a_real_machine() {
    let m = Atm::first_symbol_machine();
    let enc = Encoding::for_atm(&m);
    let d = enc.d();
    assert!(families::good(d).formula.gate_count() > 0);
    assert!(families::reject(&m, &enc).formula.gate_count() > 0);
    assert!(families::init(&m, &enc, &[1]).formula.gate_count() > 0);
    assert!(families::step(&m, &enc).formula.gate_count() > 0);
    let mut must = 0;
    let mut nob = 0;
    for k in 4..=(4 * d + 11) as usize {
        if families::must_branch(k, d).is_some() {
            must += 1;
        }
        if families::no_branch_both(k, d).is_some() {
            nob += 1;
        }
    }
    assert!(must > 0);
    assert!(nob > 0);
}
